#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/workspace.hpp"

/// Primal network simplex (Ahuja/Magnanti/Orlin ch. 11 formulation)
/// with the candidate-list pivot rule and incremental tree maintenance
/// from the Kiraly & Kovacs implementation study.
///
/// An artificial root is connected to every node by a big-M arc carrying
/// the node's initial imbalance, giving a strongly feasible starting
/// basis. Entering arcs come from a candidate list: a major iteration
/// scans arcs cyclically collecting violating arcs into a scratch-owned
/// list, and minor iterations then pivot on the currently-most-violating
/// list entry (stale entries are pruned as they are touched), so most
/// pivots cost a list sweep instead of an arc-array sweep. The leaving
/// arc is the *last* blocking arc met when traversing the pivot cycle
/// along its orientation starting at the apex, which preserves strong
/// feasibility and rules out cycling.
///
/// The spanning tree is maintained incrementally: the child lists are
/// doubly linked and updated only for the nodes re-parented by the
/// basis exchange, and the potential/depth update walks just the
/// re-hung subtree — every potential inside it shifts by the one
/// constant that makes the entering arc tight, because the tree arcs
/// *inside* the subtree are unchanged. This replaces the old O(n)
/// full-tree refresh per pivot; the computed values are identical (the
/// tree and pi(root)=0 determine them uniquely), so results are
/// bit-identical to a full refresh under the same pivot sequence.
///
/// All state lives in SoA arrays borrowed from a SimplexScratch, so a
/// reused workspace makes repeated solves allocation-free.

namespace lera::netflow::internal {

namespace {

constexpr signed char kTree = 0;
constexpr signed char kLower = 1;
constexpr signed char kUpper = 2;

class NetworkSimplex {
 public:
  NetworkSimplex(const Graph& g, SimplexScratch& s)
      : s_(s), orig_arcs_(g.num_arcs()) {
    const NodeId n = g.num_nodes();
    root_ = n;
    num_nodes_ = n + 1;
    const auto total_arcs =
        static_cast<std::size_t>(orig_arcs_) + static_cast<std::size_t>(n);

    // Announce the dominant allocation (arc SoA + node arrays) to the
    // budget/failpoint seam before any reserve can actually allocate.
    detail::alloc_tick(
        static_cast<std::int64_t>(total_arcs) *
            static_cast<std::int64_t>(2 * sizeof(NodeId) + 2 * sizeof(Flow) +
                                      sizeof(Cost) + sizeof(signed char)) +
        static_cast<std::int64_t>(num_nodes_) *
            static_cast<std::int64_t>(5 * sizeof(NodeId) + sizeof(ArcId) +
                                      sizeof(Cost)));

    s_.tail.clear();
    s_.head.clear();
    s_.cap.clear();
    s_.cost.clear();
    s_.flow.clear();
    s_.state.clear();
    s_.tail.reserve(total_arcs);
    s_.head.reserve(total_arcs);
    s_.cap.reserve(total_arcs);
    s_.cost.reserve(total_arcs);
    s_.flow.reserve(total_arcs);
    s_.state.reserve(total_arcs);

    Cost max_abs_cost = 1;
    for (ArcId a = 0; a < g.num_arcs(); ++a) {
      const Arc& arc = g.arc(a);
      push_arc(arc.tail, arc.head, arc.upper, arc.cost, 0, kLower);
      max_abs_cost = std::max(max_abs_cost, std::abs(arc.cost));
    }
    const Cost big_m = max_abs_cost * static_cast<Cost>(num_nodes_ + 1) + 1;

    s_.parent.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    s_.pred_arc.assign(static_cast<std::size_t>(num_nodes_), kInvalidArc);
    s_.depth.assign(static_cast<std::size_t>(num_nodes_), 0);
    s_.pi.assign(static_cast<std::size_t>(num_nodes_), 0);
    s_.child_first.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    s_.child_next.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    s_.child_prev.assign(static_cast<std::size_t>(num_nodes_), kInvalidNode);
    s_.candidates.clear();

    // Artificial big-M arcs form the initial spanning-tree basis: every
    // node is a depth-1 child of the root, with pi = -/+ big_m making
    // its basis arc tight.
    for (NodeId v = 0; v < n; ++v) {
      const Flow b = g.supply(v);
      const ArcId a = static_cast<ArcId>(s_.tail.size());
      if (b >= 0) {
        push_arc(v, root_, kInfFlow, big_m, b, kTree);
        s_.pi[static_cast<std::size_t>(v)] = -big_m;
      } else {
        push_arc(root_, v, kInfFlow, big_m, -b, kTree);
        s_.pi[static_cast<std::size_t>(v)] = big_m;
      }
      s_.parent[static_cast<std::size_t>(v)] = root_;
      s_.pred_arc[static_cast<std::size_t>(v)] = a;
      s_.depth[static_cast<std::size_t>(v)] = 1;
      link_child(root_, v);
    }
  }

  FlowSolution run(const Graph& g, SolveGuard* guard, PerfCounters& pc) {
    const std::size_t num_arcs = s_.tail.size();
    block_size_ = std::max<std::size_t>(
        64, static_cast<std::size_t>(
                std::sqrt(static_cast<double>(num_arcs))));
    list_size_ = std::max<std::size_t>(16, block_size_ / 4);
    minor_limit_ = std::max<std::size_t>(4, list_size_ / 4);
    scan_start_ = 0;
    minor_left_ = 0;

    for (;;) {
      if (guard != nullptr && !guard->tick()) {
        return budget_exceeded(SolverKind::kNetworkSimplex);
      }
      const ArcId entering = select_entering();
      if (entering == kInvalidArc) break;
      pivot(entering);
      ++pc.simplex_pivots;
    }

    // Positive flow left on an artificial arc means no feasible b-flow.
    for (std::size_t a = static_cast<std::size_t>(orig_arcs_); a < num_arcs;
         ++a) {
      if (s_.flow[a] > 0) return {};
    }

    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    sol.arc_flow.assign(
        s_.flow.begin(),
        s_.flow.begin() + static_cast<std::ptrdiff_t>(orig_arcs_));
    for (ArcId a = 0; a < orig_arcs_; ++a) {
      sol.cost += g.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
    }
    return sol;
  }

 private:
  void push_arc(NodeId tail, NodeId head, Flow cap, Cost cost, Flow flow,
                signed char state) {
    s_.tail.push_back(tail);
    s_.head.push_back(head);
    s_.cap.push_back(cap);
    s_.cost.push_back(cost);
    s_.flow.push_back(flow);
    s_.state.push_back(state);
  }

  Cost reduced_cost(ArcId a) const {
    const auto i = static_cast<std::size_t>(a);
    return s_.cost[i] + s_.pi[static_cast<std::size_t>(s_.tail[i])] -
           s_.pi[static_cast<std::size_t>(s_.head[i])];
  }

  /// Optimality violation of a non-tree arc (0 when none).
  Cost violation(ArcId a) const {
    const auto i = static_cast<std::size_t>(a);
    if (s_.state[i] == kLower) return -reduced_cost(a);
    if (s_.state[i] == kUpper) return reduced_cost(a);
    return 0;
  }

  /// O(1) doubly-linked child-list surgery.
  void link_child(NodeId p, NodeId c) {
    const auto pc = static_cast<std::size_t>(p);
    const auto cc = static_cast<std::size_t>(c);
    s_.child_prev[cc] = kInvalidNode;
    s_.child_next[cc] = s_.child_first[pc];
    if (s_.child_first[pc] != kInvalidNode) {
      s_.child_prev[static_cast<std::size_t>(s_.child_first[pc])] = c;
    }
    s_.child_first[pc] = c;
  }

  void unlink_child(NodeId p, NodeId c) {
    const auto cc = static_cast<std::size_t>(c);
    const NodeId prev = s_.child_prev[cc];
    const NodeId next = s_.child_next[cc];
    if (prev != kInvalidNode) {
      s_.child_next[static_cast<std::size_t>(prev)] = next;
    } else {
      s_.child_first[static_cast<std::size_t>(p)] = next;
    }
    if (next != kInvalidNode) {
      s_.child_prev[static_cast<std::size_t>(next)] = prev;
    }
  }

  /// Candidate-list pivot rule. Minor iterations pick the currently
  /// most-violating arc from the scratch list, pruning entries whose
  /// violation vanished; when the list is spent (or minor_limit_ pivots
  /// consumed it), a major iteration rebuilds it by a cyclic scan
  /// collecting up to list_size_ violating arcs. Deterministic: the
  /// scan order and the max-by-violation tie-break (first wins) are
  /// functions of the instance alone.
  ArcId select_entering() {
    for (;;) {
      while (minor_left_ > 0 && !s_.candidates.empty()) {
        --minor_left_;
        ArcId best = kInvalidArc;
        Cost best_violation = 0;
        std::size_t keep = 0;
        for (std::size_t i = 0; i < s_.candidates.size(); ++i) {
          const ArcId a = s_.candidates[i];
          const Cost v = violation(a);
          if (v <= 0) continue;  // Stale entry: prune.
          s_.candidates[keep++] = a;
          if (v > best_violation) {
            best_violation = v;
            best = a;
          }
        }
        s_.candidates.resize(keep);
        if (best != kInvalidArc) return best;
      }

      // Major iteration: rebuild the list by cyclic block scan.
      s_.candidates.clear();
      minor_left_ = minor_limit_;
      const std::size_t num_arcs = s_.tail.size();
      std::size_t scanned = 0;
      std::size_t i = scan_start_;
      while (scanned < num_arcs && s_.candidates.size() < list_size_) {
        if (violation(static_cast<ArcId>(i)) > 0) {
          s_.candidates.push_back(static_cast<ArcId>(i));
        }
        ++scanned;
        ++i;
        if (i == num_arcs) i = 0;
      }
      scan_start_ = i;
      if (s_.candidates.empty()) return kInvalidArc;  // Optimal.
    }
  }

  void pivot(ArcId entering) {
    const auto ei = static_cast<std::size_t>(entering);
    const bool increasing = s_.state[ei] == kLower;
    // Push direction p -> q through the entering arc.
    const NodeId p = increasing ? s_.tail[ei] : s_.head[ei];
    const NodeId q = increasing ? s_.head[ei] : s_.tail[ei];

    const NodeId join = find_join(p, q);

    // Cycle traversal along the orientation starting at the apex:
    //   join --(tree, downward)--> p --(entering)--> q --(tree, up)--> join.
    // Collect (arc, forward?) in that order; forward means the push goes
    // with the arc's own direction. Steps live in scratch-owned parallel
    // arrays (cycle_arc / cycle_dir / cycle_below).
    s_.cycle_arc.clear();
    s_.cycle_dir.clear();
    s_.cycle_below.clear();

    // p-side: path p..join collected bottom-up, then reversed so the
    // traversal runs join -> p. Walking down from join towards p, the
    // push direction at tree arc (w, parent(w)) is parent(w) -> w.
    for (NodeId w = p; w != join; w = s_.parent[static_cast<std::size_t>(w)]) {
      const ArcId t = s_.pred_arc[static_cast<std::size_t>(w)];
      const bool with_dir = s_.tail[static_cast<std::size_t>(t)] ==
                            s_.parent[static_cast<std::size_t>(w)];
      s_.cycle_arc.push_back(t);
      s_.cycle_dir.push_back(with_dir ? 1 : 0);
      s_.cycle_below.push_back(w);
    }
    std::reverse(s_.cycle_arc.begin(), s_.cycle_arc.end());
    std::reverse(s_.cycle_dir.begin(), s_.cycle_dir.end());
    std::reverse(s_.cycle_below.begin(), s_.cycle_below.end());

    s_.cycle_arc.push_back(entering);
    s_.cycle_dir.push_back(increasing ? 1 : 0);
    s_.cycle_below.push_back(kInvalidNode);

    // q-side: walking up from q to join; push direction w -> parent(w).
    for (NodeId w = q; w != join; w = s_.parent[static_cast<std::size_t>(w)]) {
      const ArcId t = s_.pred_arc[static_cast<std::size_t>(w)];
      const bool with_dir = s_.tail[static_cast<std::size_t>(t)] == w;
      s_.cycle_arc.push_back(t);
      s_.cycle_dir.push_back(with_dir ? 1 : 0);
      s_.cycle_below.push_back(w);
    }

    // Bottleneck and leaving arc: the LAST blocking arc along the
    // traversal preserves strong feasibility (AMO §11.13).
    const std::size_t num_steps = s_.cycle_arc.size();
    Flow delta = kInfFlow;
    std::size_t leave_index = num_steps;
    for (std::size_t idx = 0; idx < num_steps; ++idx) {
      const auto ai = static_cast<std::size_t>(s_.cycle_arc[idx]);
      const Flow slack =
          s_.cycle_dir[idx] != 0 ? s_.cap[ai] - s_.flow[ai] : s_.flow[ai];
      if (slack < delta) {
        delta = slack;
        leave_index = idx;
      } else if (slack == delta) {
        leave_index = idx;
      }
    }
    assert(leave_index < num_steps);
    assert(delta < kInfFlow && "unbounded pivot; use finite capacities");

    if (delta > 0) {
      for (std::size_t idx = 0; idx < num_steps; ++idx) {
        const auto ai = static_cast<std::size_t>(s_.cycle_arc[idx]);
        s_.flow[ai] += s_.cycle_dir[idx] != 0 ? delta : -delta;
      }
    }

    const ArcId leaving_arc = s_.cycle_arc[leave_index];
    const NodeId leaving_below = s_.cycle_below[leave_index];
    if (leaving_arc == entering) {
      // Degenerate-in-structure pivot: the entering arc saturates without
      // changing the basis; it flips to the other bound.
      s_.state[ei] = increasing ? kUpper : kLower;
      return;
    }

    // The potential shift that will make the entering arc tight, taken
    // BEFORE any tree surgery (it reads the pre-pivot potentials).
    const Cost rc_entering = reduced_cost(entering);

    // The leaving tree arc drops to whichever bound it hit.
    s_.state[static_cast<std::size_t>(leaving_arc)] =
        s_.flow[static_cast<std::size_t>(leaving_arc)] == 0 ? kLower : kUpper;
    s_.state[ei] = kTree;

    // Removing the leaving arc detaches the subtree rooted at
    // leaving_below; exactly one endpoint of the entering arc lies in it.
    // (in_detached_subtree reads the pre-pivot depths, which are still
    // intact — they are only rewritten by the subtree walk below.)
    const NodeId detached_root = leaving_below;
    const NodeId in_subtree =
        in_detached_subtree(s_.tail[ei], detached_root) ? s_.tail[ei]
                                                        : s_.head[ei];
    assert(in_detached_subtree(in_subtree, detached_root));
    const NodeId outside =
        in_subtree == s_.tail[ei] ? s_.head[ei] : s_.tail[ei];

    // Re-root the detached subtree at in_subtree by reversing the parent
    // chain in_subtree -> ... -> detached_root, then hang it on outside.
    // The child lists are patched alongside: each re-parented node is
    // unlinked from its old parent and linked to its new one, so the
    // lists stay exact without any rebuild.
    NodeId child = in_subtree;
    NodeId child_parent = s_.parent[static_cast<std::size_t>(child)];
    ArcId child_arc = s_.pred_arc[static_cast<std::size_t>(child)];
    unlink_child(child_parent, in_subtree);
    link_child(outside, in_subtree);
    s_.parent[static_cast<std::size_t>(in_subtree)] = outside;
    s_.pred_arc[static_cast<std::size_t>(in_subtree)] = entering;
    while (child != detached_root) {
      const NodeId next_parent =
          s_.parent[static_cast<std::size_t>(child_parent)];
      const ArcId next_arc = s_.pred_arc[static_cast<std::size_t>(child_parent)];
      unlink_child(next_parent, child_parent);
      link_child(child, child_parent);
      s_.parent[static_cast<std::size_t>(child_parent)] = child;
      s_.pred_arc[static_cast<std::size_t>(child_parent)] = child_arc;
      child = child_parent;
      child_parent = next_parent;
      child_arc = next_arc;
    }

    // Subtree-only update. Tree arcs inside the re-hung subtree are
    // unchanged, so all its potentials shift by the one constant that
    // zeroes the entering arc's reduced cost; depths are recomputed by
    // a DFS over the (exact) child lists of the subtree alone.
    const Cost delta_pi =
        in_subtree == s_.tail[ei] ? -rc_entering : rc_entering;
    s_.depth[static_cast<std::size_t>(in_subtree)] =
        s_.depth[static_cast<std::size_t>(outside)] + 1;
    s_.stack.clear();
    s_.stack.push_back(in_subtree);
    while (!s_.stack.empty()) {
      const NodeId u = s_.stack.back();
      s_.stack.pop_back();
      s_.pi[static_cast<std::size_t>(u)] += delta_pi;
      for (NodeId c = s_.child_first[static_cast<std::size_t>(u)];
           c != kInvalidNode;
           c = s_.child_next[static_cast<std::size_t>(c)]) {
        s_.depth[static_cast<std::size_t>(c)] =
            s_.depth[static_cast<std::size_t>(u)] + 1;
        s_.stack.push_back(c);
      }
    }
  }

  /// Lowest common ancestor of u and v in the current tree.
  NodeId find_join(NodeId u, NodeId v) const {
    while (u != v) {
      if (s_.depth[static_cast<std::size_t>(u)] >=
          s_.depth[static_cast<std::size_t>(v)]) {
        u = s_.parent[static_cast<std::size_t>(u)];
      } else {
        v = s_.parent[static_cast<std::size_t>(v)];
      }
    }
    return u;
  }

  /// True if \p v lies in the subtree rooted at \p subtree_root (walk up;
  /// note depths are still those from before the tree update).
  bool in_detached_subtree(NodeId v, NodeId subtree_root) const {
    while (v != kInvalidNode &&
           s_.depth[static_cast<std::size_t>(v)] >=
               s_.depth[static_cast<std::size_t>(subtree_root)]) {
      if (v == subtree_root) return true;
      v = s_.parent[static_cast<std::size_t>(v)];
    }
    return false;
  }

  SimplexScratch& s_;
  ArcId orig_arcs_;
  NodeId root_ = kInvalidNode;
  NodeId num_nodes_ = 0;
  std::size_t block_size_ = 0;
  std::size_t list_size_ = 0;
  std::size_t minor_limit_ = 0;
  std::size_t minor_left_ = 0;
  std::size_t scan_start_ = 0;
};

}  // namespace

FlowSolution run_network_simplex(const Graph& g, SolveGuard* guard,
                                 SolverWorkspace& w) {
  if (g.total_supply() != 0) return {};
  ++w.counters.solves;
  NetworkSimplex simplex(g, w.simplex);
  return simplex.run(g, guard, w.counters);
}

}  // namespace lera::netflow::internal
