#include "netflow/robust.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <new>
#include <sstream>
#include <thread>

#include "netflow/internal_solvers.hpp"
#include "netflow/select.hpp"
#include "netflow/validate.hpp"
#include "netflow/warm.hpp"
#include "netflow/workspace.hpp"

namespace lera::netflow {

std::string to_string(CertifyLevel level) {
  switch (level) {
    case CertifyLevel::kNone:
      return "none";
    case CertifyLevel::kFeasible:
      return "feasible";
    case CertifyLevel::kOptimal:
      return "optimal";
  }
  return "unknown";
}

std::string to_string(CertificationVerdict verdict) {
  switch (verdict) {
    case CertificationVerdict::kNotRun:
      return "not-run";
    case CertificationVerdict::kPassed:
      return "passed";
    case CertificationVerdict::kFailed:
      return "failed";
  }
  return "unknown";
}

std::vector<std::string> CircuitBreaker::open_solvers() const {
  std::vector<std::string> out;
  for (const internal::SolverBackend& backend : internal::solver_backends()) {
    if (open(backend.kind)) out.push_back(to_string(backend.kind));
  }
  return out;
}

std::string SolveDiagnostics::summary() const {
  std::ostringstream os;
  os << message;
  if (!attempts.empty()) {
    os << " [attempts:";
    for (const SolveAttempt& a : attempts) {
      os << " " << to_string(a.solver) << "=" << to_string(a.status);
      if (!a.certified && !a.note.empty()) os << "(rejected)";
    }
    if (retries > 0) os << " retries=" << retries;
    os << " cert=" << to_string(certification) << "]";
  }
  if (!breaker_skips.empty()) {
    os << " [breaker-skipped:";
    for (const std::string& s : breaker_skips) os << " " << s;
    os << "]";
  }
  if (auto_selected) {
    os << " [auto: " << to_string(auto_choice) << " | " << auto_features
       << "]";
  }
  return os.str();
}

InstanceReport validate_instance(const Graph& g) {
  InstanceReport report;
  auto error = [&report](const std::string& m) { report.errors.push_back(m); };

  if (g.total_supply() != 0) {
    error("unbalanced instance: total supply is " +
          std::to_string(g.total_supply()) +
          ", a feasible b-flow requires 0");
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Flow b = g.supply(v);
    if (b > kInfFlow || b < -kInfFlow) {
      error("node " + std::to_string(v) + " supply " + std::to_string(b) +
            " exceeds the safe magnitude kInfFlow");
    }
  }

  Cost worst_case = 0;
  bool worst_case_overflow = false;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const std::string label = "arc " + std::to_string(a);
    if (arc.tail < 0 || arc.tail >= g.num_nodes() || arc.head < 0 ||
        arc.head >= g.num_nodes()) {
      error(label + " has an endpoint outside the node range");
      continue;
    }
    if (arc.lower < 0) {
      error(label + " has negative lower bound " +
            std::to_string(arc.lower));
    }
    if (arc.lower > arc.upper) {
      error(label + " has lower bound " + std::to_string(arc.lower) +
            " above capacity " + std::to_string(arc.upper));
    }
    if (arc.upper > kInfFlow) {
      error(label + " capacity " + std::to_string(arc.upper) +
            " exceeds the safe magnitude kInfFlow");
    }
    if (arc.cost > kInfCost || arc.cost < -kInfCost) {
      error(label + " cost " + std::to_string(arc.cost) +
            " exceeds the overflow-safe magnitude kInfCost");
    }
    // Overflow-checked worst-case objective magnitude |cost| * capacity.
    Cost term = 0;
    const Cost abs_cost = arc.cost < 0 ? -arc.cost : arc.cost;
    const Flow cap = std::max<Flow>(arc.upper, 0);
    if (!checked_mul(abs_cost, cap, term) ||
        !checked_add(worst_case, term, worst_case)) {
      worst_case_overflow = true;
    }
  }
  if (worst_case_overflow) {
    report.warnings.push_back(
        "worst-case |cost|*capacity sum overflows Cost; objective values "
        "near the optimum may be unreliable");
  }
  return report;
}

namespace {

std::vector<SolverKind> effective_chain(const Graph& g,
                                        const SolveOptions& options,
                                        SolveDiagnostics& diag,
                                        SolverWorkspace& ws) {
  std::vector<SolverKind> chain = options.chain;
  if (chain.empty()) {
    chain = {SolverKind::kNetworkSimplex,
             SolverKind::kSuccessiveShortestPaths,
             SolverKind::kCycleCanceling};
  }
  // Expand SolverKind::kAuto in place: measure the instance once, ask
  // the shape-based selector for a concrete backend, and record the
  // decision so logs and tests can see why it was made.
  if (std::find(chain.begin(), chain.end(), SolverKind::kAuto) !=
      chain.end()) {
    InstanceShape shape = measure_shape(g);
    shape.warm_cache_match =
        options.warm_cache != nullptr && options.warm_cache->matches(g);
    const SolverKind choice = select_solver(shape);
    diag.auto_selected = true;
    diag.auto_choice = choice;
    diag.auto_features = shape.summary();
    ++ws.counters.auto_selections;
    std::replace(chain.begin(), chain.end(), SolverKind::kAuto, choice);
  }
  // Drop duplicates, keeping first occurrences: retrying the identical
  // deterministic algorithm cannot change the answer.
  std::vector<SolverKind> unique;
  for (SolverKind kind : chain) {
    if (std::find(unique.begin(), unique.end(), kind) == unique.end()) {
      unique.push_back(kind);
    }
  }
  return unique;
}

/// Runs the configured certification checks; returns true when the
/// answer passes, otherwise false with the reason in \p why.
bool certify_answer(const Graph& g, const FlowSolution& sol,
                    CertifyLevel level, std::string& why) {
  if (level == CertifyLevel::kNone) return true;
  const CheckResult feasible = check_feasible(g, sol.arc_flow);
  if (!feasible.ok) {
    why = "not a feasible b-flow: " + feasible.message;
    return false;
  }
  Cost actual = 0;
  if (!checked_flow_cost(g, sol.arc_flow, actual)) {
    why = "flow cost overflows Cost";
    return false;
  }
  if (actual != sol.cost) {
    why = "reported cost " + std::to_string(sol.cost) +
          " does not match recomputed cost " + std::to_string(actual);
    return false;
  }
  if (level == CertifyLevel::kOptimal && !certify_optimal(g, sol.arc_flow)) {
    why = "residual network has a negative-cost cycle (non-optimal)";
    return false;
  }
  return true;
}

}  // namespace

FlowSolution solve_robust(const Graph& g, const SolveOptions& options,
                          SolveDiagnostics* diagnostics) {
  SolveDiagnostics local;
  SolveDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  diag = SolveDiagnostics{};

  // All attempts run through one scratch arena: the caller's, or a
  // throwaway local one so the perf counters are populated either way.
  SolverWorkspace local_ws;
  SolverWorkspace* ws =
      options.workspace != nullptr ? options.workspace : &local_ws;
  if (ws->used) ++ws->counters.workspace_reuse_hits;
  ws->used = true;
  const PerfCounters perf_base = ws->counters;

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  auto ns_since = [](std::chrono::steady_clock::time_point from) {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - from)
        .count();
  };
  auto finish = [&](FlowSolution sol) {
    diag.wall_seconds = elapsed();
    diag.perf = ws->counters.delta_since(perf_base);
    return sol;
  };
  /// Seconds of time budget left: the tighter of max_seconds_total and
  /// the absolute deadline; +infinity when neither is configured.
  auto remaining_budget = [&]() {
    double remaining = std::numeric_limits<double>::infinity();
    if (options.max_seconds_total > 0) {
      remaining = options.max_seconds_total - elapsed();
    }
    if (!options.deadline.unlimited()) {
      remaining = std::min(remaining, options.deadline.remaining_seconds());
    }
    return remaining;
  };
  auto cancelled_verdict = [&]() {
    diag.cancelled = true;
    FlowSolution out;
    out.status = SolveStatus::kCancelled;
    out.message = "cancelled by caller";
    diag.message = "cancelled after " +
                   std::to_string(diag.attempts.size()) + " attempt(s)";
    return finish(out);
  };

  if (options.cancel.cancelled()) return cancelled_verdict();

  const auto t_validate = std::chrono::steady_clock::now();
  const InstanceReport report = validate_instance(g);
  ws->counters.validate_ns += ns_since(t_validate);
  diag.instance_errors = report.errors;
  diag.instance_warnings = report.warnings;
  if (!report.ok()) {
    FlowSolution bad;
    bad.status = SolveStatus::kBadInstance;
    bad.message = report.errors.front();
    if (report.errors.size() > 1) {
      bad.message += " (+" + std::to_string(report.errors.size() - 1) +
                     " more finding(s))";
    }
    diag.message = "rejected: " + bad.message;
    return finish(bad);
  }

  // Timed wrapper for the certification checks. Certification builds
  // its own residual / adjacency structures, so it can hit allocation
  // failure like any solver; that is not a corrupted answer, and
  // certify_oom lets callers route it down the memory path instead of
  // the transient-fault retry path.
  bool certify_oom = false;
  auto certify_timed = [&](const FlowSolution& sol, CertifyLevel level,
                           std::string& why) {
    const auto t_cert = std::chrono::steady_clock::now();
    certify_oom = false;
    bool ok = false;
    try {
      ok = certify_answer(g, sol, level, why);
    } catch (const std::bad_alloc&) {
      why = "certification: allocation failed (out of memory)";
      certify_oom = true;
      diag.memory_hit = true;
    }
    ws->counters.certify_ns += ns_since(t_cert);
    return ok;
  };

  // Resolve the chain (kAuto expansion included) before the warm-start
  // attempt, so the auto-selection story lands in the diagnostics even
  // when the warm path answers without touching the chain.
  const std::vector<SolverKind> chain =
      effective_chain(g, options, diag, *ws);

  // Memory budgeting: each attempt pre-charges its backend's predicted
  // footprint; a denial skips that backend (kMemoryExceeded attempt)
  // and falls through the chain like any other per-attempt failure.
  const bool budgeted = options.memory_budget.valid();
  const InstanceShape mem_shape = budgeted ? measure_shape(g) : InstanceShape{};
  MemoryBudget mem_budget = options.memory_budget;
  /// Charges \p kind's predicted bytes; returns an un-ok() charge (and
  /// records the denial) when the budget refuses.
  auto charge_attempt = [&](SolverKind kind) {
    BudgetCharge charge;
    if (budgeted) {
      const std::int64_t want = estimate_solver_bytes(mem_shape, kind);
      diag.memory_estimated_bytes =
          std::max(diag.memory_estimated_bytes, want);
      charge = BudgetCharge(mem_budget, want);
      if (charge.ok()) {
        ws->counters.mem_charged_bytes += want;
        ws->counters.mem_peak_bytes =
            std::max(ws->counters.mem_peak_bytes, mem_budget.used());
      } else {
        diag.memory_hit = true;
        ++ws->counters.mem_denials;
      }
    }
    return charge;
  };

  // Warm start: when the cache holds a prior optimal flow for this very
  // topology, repair it for the new costs/capacities instead of solving
  // cold. The warm answer is always certified (at least kFeasible) so a
  // stale or wrong cache entry falls back to the cold chain instead of
  // leaking through.
  if (options.warm_cache != nullptr && options.warm_cache->matches(g)) {
    diag.warm_start_attempted = true;
    const double remaining = remaining_budget();
    // The warm resolve runs the SSP machinery; budget it like an SSP
    // attempt. A denial just skips the warm path — the cold chain may
    // still find a backend that fits.
    const BudgetCharge warm_charge =
        charge_attempt(SolverKind::kSuccessiveShortestPaths);
    if (remaining > 0 && !(budgeted && !warm_charge.ok())) {
      SolveGuard guard;
      guard.max_iterations = options.max_iterations_per_solver;
      guard.cancel = options.cancel;
      if (remaining != std::numeric_limits<double>::infinity()) {
        guard.max_seconds = remaining;
      }
      guard.start();
      const double t_attempt = elapsed();
      const auto t_solve = std::chrono::steady_clock::now();
      FlowSolution sol;
      try {
        sol = resolve_warm(g, *options.warm_cache, &guard, ws);
      } catch (const std::bad_alloc&) {
        sol.status = SolveStatus::kMemoryExceeded;
        sol.message = "warm-start: allocation failed (out of memory)";
        diag.memory_hit = true;
      }
      ws->counters.solve_ns += ns_since(t_solve);
      if (sol.status == SolveStatus::kOptimal && options.post_solve_hook) {
        options.post_solve_hook(g, sol);
      }

      SolveAttempt attempt;
      attempt.solver = SolverKind::kSuccessiveShortestPaths;
      attempt.status = sol.status;
      attempt.iterations = guard.iterations;
      attempt.seconds = elapsed() - t_attempt;
      attempt.note = "warm-start";
      diag.iterations += guard.iterations;

      if (guard.cancelled) {
        diag.attempts.push_back(attempt);
        return cancelled_verdict();
      }
      if (sol.status == SolveStatus::kOptimal) {
        const CertifyLevel level = options.certify == CertifyLevel::kNone
                                       ? CertifyLevel::kFeasible
                                       : options.certify;
        std::string why;
        if (certify_timed(sol, level, why)) {
          attempt.certified = true;
          diag.attempts.push_back(attempt);
          diag.solver_used = SolverKind::kSuccessiveShortestPaths;
          diag.certification = CertificationVerdict::kPassed;
          diag.warm_start_hit = true;
          ++ws->counters.warm_start_hits;
          diag.message = "optimal via warm-start resolve";
          diag.warm_store_attempted = true;
          diag.warm_store = options.warm_cache->store(g, sol.arc_flow);
          if (diag.warm_store != WarmStoreOutcome::kStored) {
            ++ws->counters.warm_store_rejects;
            diag.warm_store_note =
                "warm-store rejected: " + to_string(diag.warm_store);
          }
          return finish(sol);
        }
        attempt.note = "warm-start rejected: " + why;
        diag.attempts.push_back(attempt);
      } else {
        attempt.note = "warm-start fell back to cold solve";
        diag.attempts.push_back(attempt);
      }
    }
  }
  if (options.warm_cache != nullptr && !diag.warm_start_hit) {
    ++ws->counters.warm_start_misses;
  }

  int infeasible_votes = 0;
  FlowSolution uncertified;
  bool have_uncertified = false;
  bool budget_hit = false;
  bool chain_stopped = false;

  // Seeded backoff jitter (splitmix64), deterministic per solve.
  std::uint64_t rng_state =
      options.retry_seed * 0x9e3779b97f4a7c15ULL + 0xbf58476d1ce4e5b9ULL;
  auto backoff = [&](int retry) {
    if (options.retry_backoff_seconds <= 0) return;
    std::uint64_t z = (rng_state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    const double jitter =
        0.5 + 0.5 * (static_cast<double>(z >> 11) / 9007199254740992.0);
    double sleep_s = options.retry_backoff_seconds *
                     static_cast<double>(std::int64_t{1}
                                         << std::min(retry, 20)) *
                     jitter;
    const double remaining = remaining_budget();
    if (remaining < sleep_s) sleep_s = std::max(0.0, remaining);
    if (sleep_s > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
  };

  for (SolverKind kind : chain) {
    if (chain_stopped) break;
    if (options.breaker != nullptr && !options.breaker->allow(kind)) {
      diag.breaker_skips.push_back(to_string(kind));
      continue;
    }

    bool next_solver = false;
    for (int retry = 0; !next_solver; ++retry) {
      if (options.cancel.cancelled()) return cancelled_verdict();

      SolveGuard guard;
      guard.max_iterations = options.max_iterations_per_solver;
      guard.cancel = options.cancel;
      const double remaining = remaining_budget();
      if (remaining <= 0) {
        budget_hit = true;
        diag.deadline_hit = true;
        chain_stopped = true;
        break;
      }
      if (remaining != std::numeric_limits<double>::infinity()) {
        guard.max_seconds = remaining;
      }

      const BudgetCharge mem_charge = charge_attempt(kind);
      if (budgeted && !mem_charge.ok()) {
        SolveAttempt denied;
        denied.solver = kind;
        denied.status = SolveStatus::kMemoryExceeded;
        denied.retry = retry;
        denied.note = "memory budget refused predicted footprint (" +
                      std::to_string(estimate_solver_bytes(mem_shape, kind)) +
                      " bytes)";
        diag.attempts.push_back(denied);
        next_solver = true;
        break;
      }

      const double t_attempt = elapsed();
      const auto t_solve = std::chrono::steady_clock::now();
      FlowSolution sol = solve(g, kind, &guard, ws);
      ws->counters.solve_ns += ns_since(t_solve);
      if (sol.status == SolveStatus::kOptimal && options.post_solve_hook) {
        options.post_solve_hook(g, sol);
      }

      SolveAttempt attempt;
      attempt.solver = kind;
      attempt.status = sol.status;
      attempt.iterations = guard.iterations;
      attempt.seconds = elapsed() - t_attempt;
      attempt.retry = retry;
      diag.iterations += guard.iterations;

      switch (sol.status) {
        case SolveStatus::kOptimal: {
          std::string why;
          if (certify_timed(sol, options.certify, why)) {
            attempt.certified = options.certify != CertifyLevel::kNone;
            diag.attempts.push_back(attempt);
            diag.solver_used = kind;
            diag.fallbacks_taken =
                static_cast<int>(diag.attempts.size()) - 1;
            diag.certification = options.certify == CertifyLevel::kNone
                                     ? CertificationVerdict::kNotRun
                                     : CertificationVerdict::kPassed;
            diag.message = "optimal via " + to_string(kind) +
                           (diag.fallbacks_taken > 0
                                ? " after " +
                                      std::to_string(diag.fallbacks_taken) +
                                      " fallback(s)"
                                : "");
            if (options.breaker != nullptr) {
              options.breaker->record_success(kind);
            }
            if (options.warm_cache != nullptr) {
              diag.warm_store_attempted = true;
              diag.warm_store = options.warm_cache->store(g, sol.arc_flow);
              if (diag.warm_store != WarmStoreOutcome::kStored) {
                ++ws->counters.warm_store_rejects;
                diag.warm_store_note =
                    "warm-store rejected: " + to_string(diag.warm_store);
              }
            }
            return finish(sol);
          }
          attempt.note = "certification failed: " + why;
          if (certify_oom) {
            // Out of memory while *checking* the answer, not a
            // corrupted answer: a typed memory attempt, the next
            // backend gets its turn, and the breaker stays out of it.
            attempt.status = SolveStatus::kMemoryExceeded;
            diag.attempts.push_back(attempt);
            next_solver = true;
            break;
          }
          diag.attempts.push_back(attempt);
          uncertified = std::move(sol);
          have_uncertified = true;
          if (options.breaker != nullptr) {
            options.breaker->record_failure(kind);
          }
          // A flunked certificate is the transient-fault signature (the
          // solver itself is deterministic, its answer was corrupted in
          // flight): re-run the same solver under the retry budget
          // before falling through the chain.
          if (retry < options.max_retries_per_solver) {
            ++diag.retries;
            backoff(retry);
            continue;
          }
          next_solver = true;
          break;
        }
        case SolveStatus::kInfeasible: {
          ++infeasible_votes;
          diag.attempts.push_back(attempt);
          const bool need_confirmation =
              options.cross_check_infeasible &&
              options.certify != CertifyLevel::kNone;
          if (!need_confirmation || infeasible_votes >= 2) {
            diag.fallbacks_taken =
                static_cast<int>(diag.attempts.size()) - 1;
            diag.message = "infeasible (confirmed by " +
                           std::to_string(infeasible_votes) + " solver(s))";
            FlowSolution inf;
            inf.status = SolveStatus::kInfeasible;
            return finish(inf);
          }
          next_solver = true;
          break;
        }
        case SolveStatus::kBudgetExceeded: {
          budget_hit = true;
          diag.deadline_hit = diag.deadline_hit || guard.time_exceeded;
          attempt.note = sol.message;
          diag.attempts.push_back(attempt);
          next_solver = true;
          break;
        }
        case SolveStatus::kCancelled: {
          attempt.note = sol.message;
          diag.attempts.push_back(attempt);
          return cancelled_verdict();
        }
        case SolveStatus::kMemoryExceeded: {
          // A std::bad_alloc escaped the solver and was mapped at the
          // solve() boundary; fall through the chain — a cheaper
          // backend may still fit.
          diag.memory_hit = true;
          attempt.note = sol.message;
          diag.attempts.push_back(attempt);
          next_solver = true;
          break;
        }
        case SolveStatus::kBadInstance:
        case SolveStatus::kUncertified: {
          // Unreachable after validate_instance, but fail loud, not wrong.
          attempt.note = sol.message;
          diag.attempts.push_back(attempt);
          diag.message = "rejected by " + to_string(kind) + ": " + sol.message;
          return finish(sol);
        }
      }
    }
  }

  diag.fallbacks_taken =
      std::max(0, static_cast<int>(diag.attempts.size()) - 1);

  if (have_uncertified) {
    // Every optimality claim flunked certification: surface the failure
    // loudly instead of returning a plausible-but-wrong flow.
    diag.certification = CertificationVerdict::kFailed;
    uncertified.status = SolveStatus::kUncertified;
    uncertified.message =
        "every solver answer failed certification; flow must not be used";
    if (infeasible_votes > 0) {
      uncertified.message += " (chain verdicts also conflict: " +
                             std::to_string(infeasible_votes) +
                             " infeasible vote(s))";
    }
    diag.message = uncertified.message;
    return finish(uncertified);
  }
  if (infeasible_votes > 0) {
    diag.message = "infeasible (single solver verdict, chain exhausted)";
    FlowSolution inf;
    inf.status = SolveStatus::kInfeasible;
    return finish(inf);
  }
  if (budget_hit) {
    FlowSolution out;
    out.status = SolveStatus::kBudgetExceeded;
    out.message = "iteration/time budget exhausted across " +
                  std::to_string(diag.attempts.size()) + " attempt(s)";
    diag.message = out.message;
    return finish(out);
  }
  if (diag.memory_hit) {
    // Every attempt ended in a budget denial or a real allocation
    // failure: the typed memory verdict, mirroring the deadline path so
    // callers (allocator, engine, server) can degrade gracefully.
    FlowSolution out;
    out.status = SolveStatus::kMemoryExceeded;
    out.message = "memory budget exhausted across " +
                  std::to_string(diag.attempts.size()) + " attempt(s)";
    diag.message = out.message;
    return finish(out);
  }
  if (!diag.breaker_skips.empty()) {
    // Every chain entry was skipped by an open breaker: no solver ran,
    // so there is no answer to certify and nothing to trust.
    FlowSolution out;
    out.status = SolveStatus::kUncertified;
    out.message =
        "every solver in the chain is circuit-broken (breaker open)";
    diag.message = out.message;
    return finish(out);
  }
  FlowSolution out;
  out.status = SolveStatus::kBadInstance;
  out.message = "empty solver chain";
  diag.message = out.message;
  return finish(out);
}

FlowSolution solve_st_flow_robust(const Graph& g, NodeId s, NodeId t,
                                  Flow value, const SolveOptions& options,
                                  SolveDiagnostics* diagnostics) {
  Graph copy = g;
  copy.add_supply(s, value);
  copy.add_supply(t, -value);
  return solve_robust(copy, options, diagnostics);
}

}  // namespace lera::netflow
