#include "netflow/robust.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>

#include "netflow/validate.hpp"

namespace lera::netflow {

std::string to_string(CertifyLevel level) {
  switch (level) {
    case CertifyLevel::kNone:
      return "none";
    case CertifyLevel::kFeasible:
      return "feasible";
    case CertifyLevel::kOptimal:
      return "optimal";
  }
  return "unknown";
}

std::string to_string(CertificationVerdict verdict) {
  switch (verdict) {
    case CertificationVerdict::kNotRun:
      return "not-run";
    case CertificationVerdict::kPassed:
      return "passed";
    case CertificationVerdict::kFailed:
      return "failed";
  }
  return "unknown";
}

std::string SolveDiagnostics::summary() const {
  std::ostringstream os;
  os << message;
  if (!attempts.empty()) {
    os << " [attempts:";
    for (const SolveAttempt& a : attempts) {
      os << " " << to_string(a.solver) << "=" << to_string(a.status);
      if (!a.certified && !a.note.empty()) os << "(rejected)";
    }
    os << " cert=" << to_string(certification) << "]";
  }
  return os.str();
}

InstanceReport validate_instance(const Graph& g) {
  InstanceReport report;
  auto error = [&report](const std::string& m) { report.errors.push_back(m); };

  if (g.total_supply() != 0) {
    error("unbalanced instance: total supply is " +
          std::to_string(g.total_supply()) +
          ", a feasible b-flow requires 0");
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const Flow b = g.supply(v);
    if (b > kInfFlow || b < -kInfFlow) {
      error("node " + std::to_string(v) + " supply " + std::to_string(b) +
            " exceeds the safe magnitude kInfFlow");
    }
  }

  Cost worst_case = 0;
  bool worst_case_overflow = false;
  for (ArcId a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(a);
    const std::string label = "arc " + std::to_string(a);
    if (arc.tail < 0 || arc.tail >= g.num_nodes() || arc.head < 0 ||
        arc.head >= g.num_nodes()) {
      error(label + " has an endpoint outside the node range");
      continue;
    }
    if (arc.lower < 0) {
      error(label + " has negative lower bound " +
            std::to_string(arc.lower));
    }
    if (arc.lower > arc.upper) {
      error(label + " has lower bound " + std::to_string(arc.lower) +
            " above capacity " + std::to_string(arc.upper));
    }
    if (arc.upper > kInfFlow) {
      error(label + " capacity " + std::to_string(arc.upper) +
            " exceeds the safe magnitude kInfFlow");
    }
    if (arc.cost > kInfCost || arc.cost < -kInfCost) {
      error(label + " cost " + std::to_string(arc.cost) +
            " exceeds the overflow-safe magnitude kInfCost");
    }
    // Overflow-checked worst-case objective magnitude |cost| * capacity.
    Cost term = 0;
    const Cost abs_cost = arc.cost < 0 ? -arc.cost : arc.cost;
    const Flow cap = std::max<Flow>(arc.upper, 0);
    if (!checked_mul(abs_cost, cap, term) ||
        !checked_add(worst_case, term, worst_case)) {
      worst_case_overflow = true;
    }
  }
  if (worst_case_overflow) {
    report.warnings.push_back(
        "worst-case |cost|*capacity sum overflows Cost; objective values "
        "near the optimum may be unreliable");
  }
  return report;
}

namespace {

std::vector<SolverKind> effective_chain(const SolveOptions& options) {
  std::vector<SolverKind> chain = options.chain;
  if (chain.empty()) {
    chain = {SolverKind::kNetworkSimplex,
             SolverKind::kSuccessiveShortestPaths,
             SolverKind::kCycleCanceling};
  }
  // Drop duplicates, keeping first occurrences: retrying the identical
  // deterministic algorithm cannot change the answer.
  std::vector<SolverKind> unique;
  for (SolverKind kind : chain) {
    if (std::find(unique.begin(), unique.end(), kind) == unique.end()) {
      unique.push_back(kind);
    }
  }
  return unique;
}

/// Runs the configured certification checks; returns true when the
/// answer passes, otherwise false with the reason in \p why.
bool certify_answer(const Graph& g, const FlowSolution& sol,
                    CertifyLevel level, std::string& why) {
  if (level == CertifyLevel::kNone) return true;
  const CheckResult feasible = check_feasible(g, sol.arc_flow);
  if (!feasible.ok) {
    why = "not a feasible b-flow: " + feasible.message;
    return false;
  }
  Cost actual = 0;
  if (!checked_flow_cost(g, sol.arc_flow, actual)) {
    why = "flow cost overflows Cost";
    return false;
  }
  if (actual != sol.cost) {
    why = "reported cost " + std::to_string(sol.cost) +
          " does not match recomputed cost " + std::to_string(actual);
    return false;
  }
  if (level == CertifyLevel::kOptimal && !certify_optimal(g, sol.arc_flow)) {
    why = "residual network has a negative-cost cycle (non-optimal)";
    return false;
  }
  return true;
}

}  // namespace

FlowSolution solve_robust(const Graph& g, const SolveOptions& options,
                          SolveDiagnostics* diagnostics) {
  SolveDiagnostics local;
  SolveDiagnostics& diag = diagnostics != nullptr ? *diagnostics : local;
  diag = SolveDiagnostics{};

  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&t0]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  };
  auto finish = [&](FlowSolution sol) {
    diag.wall_seconds = elapsed();
    return sol;
  };

  const InstanceReport report = validate_instance(g);
  diag.instance_errors = report.errors;
  diag.instance_warnings = report.warnings;
  if (!report.ok()) {
    FlowSolution bad;
    bad.status = SolveStatus::kBadInstance;
    bad.message = report.errors.front();
    if (report.errors.size() > 1) {
      bad.message += " (+" + std::to_string(report.errors.size() - 1) +
                     " more finding(s))";
    }
    diag.message = "rejected: " + bad.message;
    return finish(bad);
  }

  const std::vector<SolverKind> chain = effective_chain(options);
  int infeasible_votes = 0;
  FlowSolution uncertified;
  bool have_uncertified = false;
  bool budget_hit = false;

  for (SolverKind kind : chain) {
    SolveGuard guard;
    guard.max_iterations = options.max_iterations_per_solver;
    if (options.max_seconds_total > 0) {
      const double remaining = options.max_seconds_total - elapsed();
      if (remaining <= 0) {
        budget_hit = true;
        break;
      }
      guard.max_seconds = remaining;
    }

    const double t_attempt = elapsed();
    FlowSolution sol = solve(g, kind, &guard);
    if (sol.status == SolveStatus::kOptimal && options.post_solve_hook) {
      options.post_solve_hook(g, sol);
    }

    SolveAttempt attempt;
    attempt.solver = kind;
    attempt.status = sol.status;
    attempt.iterations = guard.iterations;
    attempt.seconds = elapsed() - t_attempt;
    diag.iterations += guard.iterations;

    switch (sol.status) {
      case SolveStatus::kOptimal: {
        std::string why;
        if (certify_answer(g, sol, options.certify, why)) {
          attempt.certified = options.certify != CertifyLevel::kNone;
          diag.attempts.push_back(attempt);
          diag.solver_used = kind;
          diag.fallbacks_taken =
              static_cast<int>(diag.attempts.size()) - 1;
          diag.certification = options.certify == CertifyLevel::kNone
                                   ? CertificationVerdict::kNotRun
                                   : CertificationVerdict::kPassed;
          diag.message = "optimal via " + to_string(kind) +
                         (diag.fallbacks_taken > 0
                              ? " after " +
                                    std::to_string(diag.fallbacks_taken) +
                                    " fallback(s)"
                              : "");
          return finish(sol);
        }
        attempt.note = "certification failed: " + why;
        diag.attempts.push_back(attempt);
        uncertified = std::move(sol);
        have_uncertified = true;
        break;
      }
      case SolveStatus::kInfeasible: {
        ++infeasible_votes;
        diag.attempts.push_back(attempt);
        const bool need_confirmation = options.cross_check_infeasible &&
                                       options.certify != CertifyLevel::kNone;
        if (!need_confirmation || infeasible_votes >= 2) {
          diag.fallbacks_taken =
              static_cast<int>(diag.attempts.size()) - 1;
          diag.message = "infeasible (confirmed by " +
                         std::to_string(infeasible_votes) + " solver(s))";
          FlowSolution inf;
          inf.status = SolveStatus::kInfeasible;
          return finish(inf);
        }
        break;
      }
      case SolveStatus::kBudgetExceeded: {
        budget_hit = true;
        attempt.note = sol.message;
        diag.attempts.push_back(attempt);
        break;
      }
      case SolveStatus::kBadInstance:
      case SolveStatus::kUncertified: {
        // Unreachable after validate_instance, but fail loud, not wrong.
        attempt.note = sol.message;
        diag.attempts.push_back(attempt);
        diag.message = "rejected by " + to_string(kind) + ": " + sol.message;
        return finish(sol);
      }
    }
  }

  diag.fallbacks_taken =
      std::max(0, static_cast<int>(diag.attempts.size()) - 1);

  if (have_uncertified) {
    // Every optimality claim flunked certification: surface the failure
    // loudly instead of returning a plausible-but-wrong flow.
    diag.certification = CertificationVerdict::kFailed;
    uncertified.status = SolveStatus::kUncertified;
    uncertified.message =
        "every solver answer failed certification; flow must not be used";
    if (infeasible_votes > 0) {
      uncertified.message += " (chain verdicts also conflict: " +
                             std::to_string(infeasible_votes) +
                             " infeasible vote(s))";
    }
    diag.message = uncertified.message;
    return finish(uncertified);
  }
  if (infeasible_votes > 0) {
    diag.message = "infeasible (single solver verdict, chain exhausted)";
    FlowSolution inf;
    inf.status = SolveStatus::kInfeasible;
    return finish(inf);
  }
  if (budget_hit) {
    FlowSolution out;
    out.status = SolveStatus::kBudgetExceeded;
    out.message = "iteration/time budget exhausted across " +
                  std::to_string(diag.attempts.size()) + " attempt(s)";
    diag.message = out.message;
    return finish(out);
  }
  FlowSolution out;
  out.status = SolveStatus::kBadInstance;
  out.message = "empty solver chain";
  diag.message = out.message;
  return finish(out);
}

FlowSolution solve_st_flow_robust(const Graph& g, NodeId s, NodeId t,
                                  Flow value, const SolveOptions& options,
                                  SolveDiagnostics* diagnostics) {
  Graph copy = g;
  copy.add_supply(s, value);
  copy.add_supply(t, -value);
  return solve_robust(copy, options, diagnostics);
}

}  // namespace lera::netflow
