#include <algorithm>
#include <deque>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/maxflow.hpp"
#include "netflow/residual.hpp"

/// Goldberg-Tarjan cost scaling (push-relabel refinement).
///
/// Costs are multiplied by alpha = n+1; a flow that is 1-optimal in the
/// scaled costs (no residual arc has reduced cost <= -1) is exactly
/// optimal in the original integer costs. Starting from
/// epsilon = max scaled |cost|, each refine() converts an
/// (2 epsilon)-optimal flow into an epsilon-optimal one by saturating
/// all negative-reduced-cost arcs and then discharging the resulting
/// excesses with push/relabel steps (admissible arc: residual capacity
/// and reduced cost < 0; relabel: lower the node potential just enough
/// to create one, a drop of at least epsilon).
///
/// Supplies enter as the initial excesses of the first refinement.
/// Push-relabel only terminates if a feasible b-flow exists, so
/// feasibility is established up front with one Dinic max-flow.

namespace lera::netflow::internal {

namespace {

class CostScaling {
 public:
  explicit CostScaling(const Graph& g)
      : graph_(g),
        res_(g),
        n_(g.num_nodes()),
        alpha_(static_cast<Cost>(g.num_nodes()) + 1) {
    scaled_cost_.reserve(static_cast<std::size_t>(res_.num_edges()));
    Cost max_cost = 0;
    for (int e = 0; e < res_.num_edges(); ++e) {
      const Cost c = res_.edge(e).cost * alpha_;
      scaled_cost_.push_back(c);
      max_cost = std::max(max_cost, std::abs(c));
    }
    pi_.assign(static_cast<std::size_t>(n_), 0);
    excess_.assign(static_cast<std::size_t>(n_), 0);
    epsilon_ = max_cost;
  }

  FlowSolution run(SolveGuard* guard) {
    if (!feasible()) return {};

    guard_ = guard;
    for (NodeId v = 0; v < n_; ++v) {
      excess_[static_cast<std::size_t>(v)] = graph_.supply(v);
    }
    while (epsilon_ >= 1) {
      refine();
      if (guard_ != nullptr && guard_->exceeded) {
        return budget_exceeded(SolverKind::kCostScaling);
      }
      epsilon_ /= 2;
    }

    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    sol.arc_flow = res_.arc_flows();
    for (ArcId a = 0; a < graph_.num_arcs(); ++a) {
      sol.cost +=
          graph_.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
    }
    return sol;
  }

 private:
  Cost reduced_cost(int e, NodeId tail) const {
    return scaled_cost_[static_cast<std::size_t>(e)] +
           pi_[static_cast<std::size_t>(tail)] -
           pi_[static_cast<std::size_t>(res_.edge(e).head)];
  }

  /// One Dinic run on a throwaway residual decides feasibility.
  bool feasible() const {
    Graph aug;
    aug.add_nodes(n_);
    for (ArcId a = 0; a < graph_.num_arcs(); ++a) {
      const Arc& arc = graph_.arc(a);
      aug.add_arc(arc.tail, arc.head, arc.upper, 0);
    }
    const NodeId s = aug.add_node();
    const NodeId t = aug.add_node();
    Flow need = 0;
    for (NodeId v = 0; v < n_; ++v) {
      const Flow b = graph_.supply(v);
      if (b > 0) {
        aug.add_arc(s, v, b, 0);
        need += b;
      } else if (b < 0) {
        aug.add_arc(v, t, -b, 0);
      }
    }
    Residual scratch(aug);
    return dinic_max_flow(scratch, s, t) == need;
  }

  void refine() {
    // Saturate every residual arc with negative reduced cost.
    for (int e = 0; e < res_.num_edges(); ++e) {
      const NodeId tail = res_.tail(e);
      if (res_.edge(e).cap > 0 && reduced_cost(e, tail) < 0) {
        const Flow amount = res_.edge(e).cap;
        res_.push(e, amount);
        excess_[static_cast<std::size_t>(tail)] -= amount;
        excess_[static_cast<std::size_t>(res_.edge(e).head)] += amount;
      }
    }

    std::deque<NodeId> active;
    std::vector<char> in_queue(static_cast<std::size_t>(n_), 0);
    for (NodeId v = 0; v < n_; ++v) {
      if (excess_[static_cast<std::size_t>(v)] > 0) {
        active.push_back(v);
        in_queue[static_cast<std::size_t>(v)] = 1;
      }
    }
    std::vector<std::size_t> current(static_cast<std::size_t>(n_), 0);

    while (!active.empty()) {
      if (guard_ != nullptr && !guard_->tick()) return;
      const NodeId v = active.front();
      active.pop_front();
      in_queue[static_cast<std::size_t>(v)] = 0;
      discharge(v, active, in_queue, current);
    }
  }

  void discharge(NodeId v, std::deque<NodeId>& active,
                 std::vector<char>& in_queue,
                 std::vector<std::size_t>& current) {
    const auto& out = res_.out(v);
    while (excess_[static_cast<std::size_t>(v)] > 0) {
      if (current[static_cast<std::size_t>(v)] >= out.size()) {
        relabel(v);
        current[static_cast<std::size_t>(v)] = 0;
        continue;
      }
      const int e = out[current[static_cast<std::size_t>(v)]];
      if (res_.edge(e).cap > 0 && reduced_cost(e, v) < 0) {
        const NodeId w = res_.edge(e).head;
        const Flow amount =
            std::min(excess_[static_cast<std::size_t>(v)], res_.edge(e).cap);
        res_.push(e, amount);
        excess_[static_cast<std::size_t>(v)] -= amount;
        excess_[static_cast<std::size_t>(w)] += amount;
        if (excess_[static_cast<std::size_t>(w)] > 0 &&
            !in_queue[static_cast<std::size_t>(w)]) {
          active.push_back(w);
          in_queue[static_cast<std::size_t>(w)] = 1;
        }
      } else {
        ++current[static_cast<std::size_t>(v)];
      }
    }
  }

  /// Lower pi(v) just enough to make some residual arc admissible.
  void relabel(NodeId v) {
    Cost best = -kInfCost;
    for (int e : res_.out(v)) {
      if (res_.edge(e).cap <= 0) continue;
      const Cost candidate =
          pi_[static_cast<std::size_t>(res_.edge(e).head)] -
          scaled_cost_[static_cast<std::size_t>(e)];
      best = std::max(best, candidate);
    }
    assert(best > -kInfCost && "active node with no residual arcs");
    pi_[static_cast<std::size_t>(v)] = best - epsilon_;
  }

  const Graph& graph_;
  Residual res_;
  NodeId n_;
  Cost alpha_;
  std::vector<Cost> scaled_cost_;
  std::vector<Cost> pi_;
  std::vector<Flow> excess_;
  Cost epsilon_;
  SolveGuard* guard_ = nullptr;
};

}  // namespace

FlowSolution solve_cost_scaling(const Graph& g, SolveGuard* guard,
                                SolverWorkspace* ws) {
  if (ws != nullptr) ++ws->counters.solves;
  if (g.total_supply() != 0) return {};
  if (g.num_nodes() == 0) {
    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    return sol;
  }
  CostScaling solver(g);
  return solver.run(guard);
}

}  // namespace lera::netflow::internal
