#include <algorithm>
#include <cassert>
#include <vector>

#include "netflow/internal_solvers.hpp"
#include "netflow/maxflow.hpp"
#include "netflow/residual.hpp"

/// Goldberg-Tarjan cost scaling (push-relabel refinement) with the two
/// implementation refinements Kiraly & Kovacs single out as the ones
/// that make the method competitive in practice:
///
///  * **Partial augment-relabel.** Instead of pushing one arc at a time
///    from the FIFO of active nodes, a discharge grows an admissible
///    path of up to kMaxPathLen arcs from the active node and sends one
///    bottleneck augmentation down it (retreating one arc whenever the
///    tip must be relabeled). Longer pushes mean far fewer queue
///    round-trips per unit of routed excess.
///  * **Price refinement.** After each epsilon cut, the flow is often
///    *already* epsilon-optimal — the previous phase overshot. A bounded
///    Bellman-Ford over the labels d(v) (constraint: d(head) <=
///    d(tail) + floor(rc/eps) + 1 per residual arc) searches for a
///    potential adjustment pi += eps*d that proves it; a full residual
///    verification scan guards the claim, and any failure simply falls
///    back to refine(), so the heuristic cannot compromise correctness.
///
/// Costs are multiplied by alpha = n+1; a flow that is 1-optimal in the
/// scaled costs (every residual arc has reduced cost >= -1) is exactly
/// optimal in the original integer costs: a simple residual cycle has at
/// most n arcs, so its scaled cost is >= -n > -(n+1) and its original
/// integer cost is >= 0. Starting from epsilon = max scaled |cost|, each
/// phase divides epsilon by kScaleFactor (floored at 1) and restores
/// epsilon-optimality by saturating all negative-reduced-cost arcs and
/// discharging the resulting excesses with push/relabel steps
/// (admissible arc: residual capacity and reduced cost < 0; relabel:
/// lower the node potential just enough to create one, a drop of at
/// least epsilon).
///
/// Supplies enter as the initial excesses of the first refinement.
/// Push-relabel only terminates if a feasible b-flow exists, so
/// feasibility is established up front with one Dinic max-flow — run on
/// the workspace residual before it is re-assigned to the real
/// instance, so the check shares the arena too.

namespace lera::netflow::internal {

namespace {

/// Partial-augment path length cap. Goldberg's experiments put the
/// sweet spot at ~4: long enough to amortize queue traffic, short
/// enough that retreats stay cheap.
constexpr int kMaxPathLen = 4;

/// Epsilon divisor per phase. Kiraly & Kovacs report 8..16 as the
/// robust range; larger factors mean fewer phases but harder refines.
constexpr Cost kScaleFactor = 8;

/// Pass bound for the price-refinement Bellman-Ford. Refinement is a
/// heuristic: when the labels have not converged within the bound the
/// phase simply runs refine(), so the bound trades heuristic hit rate
/// against worst-case scan cost, never correctness.
constexpr int kMaxPricePasses = 24;

/// Floor division for possibly-negative numerators (C++ '/' truncates
/// toward zero).
inline Cost floor_div(Cost a, Cost b) {
  const Cost q = a / b;
  const Cost r = a % b;
  return (r != 0 && (r < 0) != (b < 0)) ? q - 1 : q;
}

class CostScaling {
 public:
  CostScaling(const Graph& g, SolverWorkspace& w)
      : graph_(g),
        res_(w.residual),
        s_(w.cost_scaling),
        pc_(w.counters),
        n_(g.num_nodes()),
        alpha_(static_cast<Cost>(g.num_nodes()) + 1) {}

  FlowSolution run(SolveGuard* guard) {
    guard_ = guard;
    if (!feasible()) return {};

    res_.assign(graph_);
    s_.prepare(n_, res_.num_edges());
    Cost max_cost = 0;
    for (int e = 0; e < res_.num_edges(); ++e) {
      const Cost c = res_.edge(e).cost * alpha_;
      s_.scaled_cost[static_cast<std::size_t>(e)] = c;
      max_cost = std::max(max_cost, std::abs(c));
    }
    for (NodeId v = 0; v < n_; ++v) {
      s_.excess[static_cast<std::size_t>(v)] = graph_.supply(v);
    }

    epsilon_ = max_cost;
    bool first_phase = true;
    for (;;) {
      epsilon_ = std::max<Cost>(1, epsilon_ / kScaleFactor);
      ++pc_.cs_phases;
      // The zero flow of the first phase has nothing to prove; from the
      // second phase on, try potentials-only repair before refining.
      if (first_phase || !price_refine()) refine();
      first_phase = false;
      if (guard_ != nullptr && guard_->exceeded) {
        return budget_exceeded(SolverKind::kCostScaling);
      }
      if (epsilon_ == 1) break;
    }

    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    sol.arc_flow = res_.arc_flows();
    for (ArcId a = 0; a < graph_.num_arcs(); ++a) {
      sol.cost +=
          graph_.arc(a).cost * sol.arc_flow[static_cast<std::size_t>(a)];
    }
    return sol;
  }

 private:
  Cost reduced_cost(int e, NodeId tail) const {
    return s_.scaled_cost[static_cast<std::size_t>(e)] +
           s_.pi[static_cast<std::size_t>(tail)] -
           s_.pi[static_cast<std::size_t>(res_.edge(e).head)];
  }

  /// One Dinic run decides feasibility. The workspace residual hosts the
  /// augmented graph here and is re-assigned to the real instance by
  /// run() right after, so no second residual is ever allocated.
  bool feasible() {
    Graph aug;
    aug.add_nodes(n_);
    aug.reserve_arcs(graph_.num_arcs() + n_);
    for (ArcId a = 0; a < graph_.num_arcs(); ++a) {
      const Arc& arc = graph_.arc(a);
      aug.add_arc(arc.tail, arc.head, arc.upper, 0);
    }
    const NodeId s = aug.add_node();
    const NodeId t = aug.add_node();
    Flow need = 0;
    for (NodeId v = 0; v < n_; ++v) {
      const Flow b = graph_.supply(v);
      if (b > 0) {
        aug.add_arc(s, v, b, 0);
        need += b;
      } else if (b < 0) {
        aug.add_arc(v, t, -b, 0);
      }
    }
    res_.assign(aug);
    return dinic_max_flow(res_, s, t) == need;
  }

  /// Tries to prove the current flow epsilon-optimal by adjusting
  /// potentials alone. Returns true (phase done) only when the adjusted
  /// potentials pass a full residual verification scan; every other
  /// outcome falls back to refine().
  bool price_refine() {
    if (epsilon_ <= 0) return false;
    std::fill(s_.refine_dist.begin(), s_.refine_dist.end(), 0);

    // Bellman-Ford to a fixpoint of d(head) <= d(tail) +
    // floor(rc/eps) + 1 over residual arcs; a fixpoint certifies that
    // pi' = pi + eps*d makes every residual reduced cost >= -eps.
    const Cost divergence_floor =
        -(static_cast<Cost>(n_) + 1) * kScaleFactor;
    bool changed = true;
    for (int pass = 0; pass < kMaxPricePasses && changed; ++pass) {
      changed = false;
      for (int e = 0; e < res_.num_edges(); ++e) {
        if (res_.edge(e).cap <= 0) continue;
        const NodeId u = res_.tail(e);
        const Cost w = floor_div(reduced_cost(e, u), epsilon_) + 1;
        const Cost nd = s_.refine_dist[static_cast<std::size_t>(u)] + w;
        if (nd < s_.refine_dist[static_cast<std::size_t>(res_.edge(e).head)]) {
          // Any single constraint can lower a label by at most
          // kScaleFactor+1 per pass (rc >= -kScaleFactor*eps after the
          // previous refine), so a label this deep means the graph is
          // diverging toward a negative constraint cycle: stop burning
          // passes and refine.
          if (nd < divergence_floor) return false;
          s_.refine_dist[static_cast<std::size_t>(res_.edge(e).head)] = nd;
          changed = true;
        }
      }
      if (guard_ != nullptr && !guard_->tick()) return false;
    }
    if (changed) return false;  // No fixpoint within the pass budget.

    for (NodeId v = 0; v < n_; ++v) {
      s_.pi[static_cast<std::size_t>(v)] +=
          epsilon_ * s_.refine_dist[static_cast<std::size_t>(v)];
    }
    // Verification scan: the fixpoint argument says this cannot fail,
    // but the claim is cheap to check and refine() below is correct
    // from ANY potentials, so a failed scan costs nothing but time.
    for (int e = 0; e < res_.num_edges(); ++e) {
      if (res_.edge(e).cap <= 0) continue;
      if (reduced_cost(e, res_.tail(e)) < -epsilon_) return false;
    }
    ++pc_.price_refinements;
    return true;
  }

  void enqueue(NodeId v) {
    if (s_.in_queue[static_cast<std::size_t>(v)] != 0) return;
    s_.in_queue[static_cast<std::size_t>(v)] = 1;
    s_.active.push_back(v);
  }

  NodeId dequeue() {
    const NodeId v = s_.active[queue_head_++];
    s_.in_queue[static_cast<std::size_t>(v)] = 0;
    // Compact the consumed prefix now and then so the queue's footprint
    // tracks the live entries, not the total traffic.
    if (queue_head_ >= 65536 && queue_head_ * 2 >= s_.active.size()) {
      s_.active.erase(s_.active.begin(),
                      s_.active.begin() + static_cast<std::ptrdiff_t>(
                                              queue_head_));
      queue_head_ = 0;
    }
    return v;
  }

  /// Converts the current (kScaleFactor * eps)-optimal flow into an
  /// eps-optimal one.
  void refine() {
    // Saturate every residual arc with negative reduced cost: the flow
    // becomes 0-optimal w.r.t. the current potentials, at the price of
    // node imbalances that the discharge loop below drains.
    for (int e = 0; e < res_.num_edges(); ++e) {
      const NodeId tail = res_.tail(e);
      if (res_.edge(e).cap > 0 && reduced_cost(e, tail) < 0) {
        const Flow amount = res_.edge(e).cap;
        res_.push(e, amount);
        s_.excess[static_cast<std::size_t>(tail)] -= amount;
        s_.excess[static_cast<std::size_t>(res_.edge(e).head)] += amount;
      }
    }

    s_.active.clear();
    queue_head_ = 0;
    std::fill(s_.current.begin(), s_.current.end(), 0);
    std::fill(s_.in_queue.begin(), s_.in_queue.end(), 0);
    for (NodeId v = 0; v < n_; ++v) {
      if (s_.excess[static_cast<std::size_t>(v)] > 0) enqueue(v);
    }

    while (queue_head_ < s_.active.size()) {
      const NodeId v = dequeue();
      if (!discharge(v)) return;  // Guard tripped.
    }
  }

  /// Partial augment-relabel discharge: drains excess(start) by growing
  /// admissible paths of up to kMaxPathLen arcs and augmenting along
  /// them. Returns false when the guard trips.
  bool discharge(NodeId start) {
    NodeId tip = start;
    s_.path.clear();
    while (s_.excess[static_cast<std::size_t>(start)] > 0) {
      if (guard_ != nullptr && !guard_->tick()) return false;

      // Advance the tip along its current-arc pointer.
      const auto out = res_.out(tip);
      const auto deg = static_cast<std::int32_t>(out.size());
      std::int32_t& cur = s_.current[static_cast<std::size_t>(tip)];
      std::int32_t advanced_edge = -1;
      while (cur < deg) {
        const int e = out[static_cast<std::size_t>(cur)];
        if (res_.edge(e).cap > 0 && reduced_cost(e, tip) < 0) {
          advanced_edge = e;
          break;
        }
        ++cur;
      }

      if (advanced_edge >= 0) {
        s_.path.push_back(advanced_edge);
        tip = res_.edge(advanced_edge).head;
        if (s_.excess[static_cast<std::size_t>(tip)] < 0 ||
            static_cast<int>(s_.path.size()) >= kMaxPathLen) {
          augment(start, tip);
          tip = start;
          s_.path.clear();
        }
        continue;
      }

      // No admissible arc from the tip: relabel it and retreat one arc
      // (the relabel may have killed the admissibility of the arc we
      // arrived through).
      if (!relabel(tip)) {
        // Residual dead end: a zero-excess tip whose every incident
        // edge is exhausted (its out arcs saturated, its in arcs at
        // zero flow). It cannot pass flow onward, so lower its
        // potential just enough to turn the arc we arrived through
        // inadmissible (rc 0) and retreat. Safe: a node with no
        // residual out arcs carries no eps-optimality constraints, and
        // each visit retires one entering arc, so the search cannot
        // cycle through it. An *active* dead end would mean the
        // instance is infeasible, which feasible() already ruled out.
        assert(s_.excess[static_cast<std::size_t>(tip)] == 0 &&
               !s_.path.empty());
        const int back = s_.path.back();
        s_.pi[static_cast<std::size_t>(tip)] =
            s_.scaled_cost[static_cast<std::size_t>(back)] +
            s_.pi[static_cast<std::size_t>(res_.tail(back))];
      }
      if (!s_.path.empty()) {
        tip = res_.tail(s_.path.back());
        s_.path.pop_back();
      }
    }
    return true;
  }

  /// Sends the bottleneck amount from \p start down the admissible path
  /// to \p end. Interior nodes' excesses cancel; only the endpoints
  /// change, so only \p end can become newly active.
  void augment(NodeId start, NodeId end) {
    Flow delta = s_.excess[static_cast<std::size_t>(start)];
    for (const int e : s_.path) {
      delta = std::min(delta, res_.edge(e).cap);
    }
    assert(delta > 0);
    for (const int e : s_.path) res_.push(e, delta);
    s_.excess[static_cast<std::size_t>(start)] -= delta;
    s_.excess[static_cast<std::size_t>(end)] += delta;
    ++pc_.cs_pushes;
    if (end != start && s_.excess[static_cast<std::size_t>(end)] > 0) {
      enqueue(end);
    }
  }

  /// Lower pi(v) just enough to make some residual arc admissible.
  /// Returns false when v has no residual arc at all (a dead end, only
  /// possible for a zero-excess path tip); the caller handles it.
  bool relabel(NodeId v) {
    Cost best = -kInfCost;
    for (int e : res_.out(v)) {
      if (res_.edge(e).cap <= 0) continue;
      const Cost candidate =
          s_.pi[static_cast<std::size_t>(res_.edge(e).head)] -
          s_.scaled_cost[static_cast<std::size_t>(e)];
      best = std::max(best, candidate);
    }
    if (best <= -kInfCost) return false;
    s_.pi[static_cast<std::size_t>(v)] = best - epsilon_;
    s_.current[static_cast<std::size_t>(v)] = 0;
    ++pc_.cs_relabels;
    return true;
  }

  const Graph& graph_;
  Residual& res_;
  CostScalingScratch& s_;
  PerfCounters& pc_;
  NodeId n_;
  Cost alpha_;
  Cost epsilon_ = 0;
  std::size_t queue_head_ = 0;
  SolveGuard* guard_ = nullptr;
};

}  // namespace

FlowSolution run_cost_scaling(const Graph& g, SolveGuard* guard,
                              SolverWorkspace& w) {
  ++w.counters.solves;
  if (g.total_supply() != 0) return {};
  if (g.num_nodes() == 0) {
    FlowSolution sol;
    sol.status = SolveStatus::kOptimal;
    return sol;
  }
  CostScaling solver(g, w);
  return solver.run(guard);
}

}  // namespace lera::netflow::internal
