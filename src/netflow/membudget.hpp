#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>

#include "netflow/select.hpp"
#include "netflow/solution.hpp"

/// \file membudget.hpp
/// Byte-budget accounting for the solve stack.
///
/// A MemoryBudget is a copyable handle to a shared byte ledger: callers
/// charge bytes before a large allocation, release them when the memory
/// is returned, and the ledger tracks the cap, the bytes in use and the
/// high-water mark. Budgets chain exactly like CancelToken: a child
/// budget charges itself *and* every ancestor atomically, so one
/// engine-wide cap fans out to per-session and per-solve caps without
/// bookkeeping — a request-level charge shows up in the engine-level
/// high-water mark. A default-constructed budget is inert: charges
/// always succeed and nothing is tracked, which keeps the unbudgeted
/// path free.
///
/// A cap of 0 means "track, never refuse" — useful for observability
/// (peak bytes in LERA_PERF / HEALTH) without enforcement.
///
/// The companion estimators predict a solve's footprint in O(1) from an
/// InstanceShape (select.hpp), using the same sizeof() arithmetic as the
/// real Residual / SolverWorkspace containers, so admission control can
/// refuse an instance *before* any allocation happens.

namespace lera::netflow {

namespace detail {

/// Thread-local allocation failpoint seam. The solvers' coarse
/// allocation sites (Residual::assign, scratch prepare(), CSR builds)
/// announce their upcoming allocation here; a test-installed hook (see
/// OomFailpoint in fault_injection.hpp) can throw std::bad_alloc to
/// simulate allocation failure at an exact, seeded site. With no hook
/// installed the cost is one thread-local null check.
struct AllocTickHook {
  void (*fn)(void* ctx, std::int64_t bytes) = nullptr;
  void* ctx = nullptr;
};

extern thread_local AllocTickHook t_alloc_tick_hook;

inline void alloc_tick(std::int64_t bytes) {
  const AllocTickHook& h = t_alloc_tick_hook;
  if (h.fn != nullptr) h.fn(h.ctx, bytes);
}

}  // namespace detail

/// Copyable, thread-safe byte-budget handle. See the file comment for
/// the chaining and cap semantics.
class MemoryBudget {
 public:
  MemoryBudget() = default;

  /// Fresh root budget. \p cap_bytes <= 0 means track-only (never
  /// refuses a charge).
  static MemoryBudget make(std::int64_t cap_bytes = 0) {
    MemoryBudget b;
    b.state_ = std::make_shared<State>();
    b.state_->cap = cap_bytes > 0 ? cap_bytes : 0;
    return b;
  }

  /// Budget whose charges also count against this budget (and all its
  /// ancestors). child() on an inert budget returns a fresh root.
  MemoryBudget child(std::int64_t cap_bytes = 0) const {
    MemoryBudget b = make(cap_bytes);
    b.state_->parent = state_;
    return b;
  }

  /// False for the inert default budget.
  bool valid() const { return state_ != nullptr; }

  /// Tries to charge \p bytes against this budget and every ancestor,
  /// all-or-nothing: if any level would exceed its cap the whole charge
  /// is rolled back, that level's denial counter ticks, and false is
  /// returned. Charging an inert budget (or <= 0 bytes) succeeds and
  /// tracks nothing. Thread-safe.
  bool try_charge(std::int64_t bytes) {
    if (state_ == nullptr || bytes <= 0) return true;
    State* s = state_.get();
    while (s != nullptr) {
      const std::int64_t now =
          s->used.fetch_add(bytes, std::memory_order_acq_rel) + bytes;
      if (s->cap > 0 && now > s->cap) {
        s->used.fetch_sub(bytes, std::memory_order_acq_rel);
        s->denials.fetch_add(1, std::memory_order_relaxed);
        // Roll back the levels already charged below the refusing one.
        for (State* undo = state_.get(); undo != s; undo = undo->parent.get()) {
          undo->used.fetch_sub(bytes, std::memory_order_acq_rel);
        }
        return false;
      }
      raise_peak(*s, now);
      s = s->parent.get();
    }
    return true;
  }

  /// Returns \p bytes previously charged with try_charge. Must pair
  /// with a successful charge of the same size.
  void release(std::int64_t bytes) {
    if (state_ == nullptr || bytes <= 0) return;
    for (State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      s->used.fetch_sub(bytes, std::memory_order_acq_rel);
    }
  }

  /// Bytes currently charged at this level (0 for inert budgets).
  std::int64_t used() const {
    return state_ ? state_->used.load(std::memory_order_acquire) : 0;
  }

  /// High-water mark of used() at this level.
  std::int64_t peak() const {
    return state_ ? state_->peak.load(std::memory_order_acquire) : 0;
  }

  /// This level's cap (0 = track-only).
  std::int64_t cap() const { return state_ ? state_->cap : 0; }

  /// Charges refused at this level.
  std::int64_t denials() const {
    return state_ ? state_->denials.load(std::memory_order_relaxed) : 0;
  }

  /// The tightest remaining headroom across this level and every
  /// ancestor; INT64_MAX when nothing in the chain enforces a cap.
  std::int64_t remaining() const {
    std::int64_t best = std::numeric_limits<std::int64_t>::max();
    for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
      if (s->cap > 0) {
        const std::int64_t room =
            s->cap - s->used.load(std::memory_order_acquire);
        best = std::min(best, room > 0 ? room : 0);
      }
    }
    return best;
  }

  /// True when a charge of \p bytes would be refused somewhere in the
  /// chain (advisory — a concurrent charge can still race it).
  bool would_deny(std::int64_t bytes) const {
    return valid() && bytes > 0 && bytes > remaining();
  }

 private:
  struct State {
    std::int64_t cap = 0;  ///< 0 = track-only.
    std::atomic<std::int64_t> used{0};
    std::atomic<std::int64_t> peak{0};
    std::atomic<std::int64_t> denials{0};
    std::shared_ptr<State> parent;
  };

  static void raise_peak(State& s, std::int64_t candidate) {
    std::int64_t cur = s.peak.load(std::memory_order_relaxed);
    while (candidate > cur &&
           !s.peak.compare_exchange_weak(cur, candidate,
                                         std::memory_order_acq_rel)) {
    }
  }

  std::shared_ptr<State> state_;
};

/// RAII charge: acquires bytes from a budget on construction, releases
/// them on destruction. A failed acquisition (ok() == false) releases
/// nothing. Move-only.
class BudgetCharge {
 public:
  BudgetCharge() = default;
  BudgetCharge(MemoryBudget budget, std::int64_t bytes)
      : budget_(std::move(budget)),
        bytes_(bytes),
        ok_(budget_.try_charge(bytes)) {}

  BudgetCharge(BudgetCharge&& o) noexcept
      : budget_(std::move(o.budget_)), bytes_(o.bytes_), ok_(o.ok_) {
    o.ok_ = false;
    o.bytes_ = 0;
  }
  BudgetCharge& operator=(BudgetCharge&& o) noexcept {
    if (this != &o) {
      reset();
      budget_ = std::move(o.budget_);
      bytes_ = o.bytes_;
      ok_ = o.ok_;
      o.ok_ = false;
      o.bytes_ = 0;
    }
    return *this;
  }
  BudgetCharge(const BudgetCharge&) = delete;
  BudgetCharge& operator=(const BudgetCharge&) = delete;

  ~BudgetCharge() { reset(); }

  /// True when the charge was accepted (inert budgets always accept).
  bool ok() const { return ok_; }
  std::int64_t bytes() const { return ok_ ? bytes_ : 0; }

  /// Releases the charge early.
  void reset() {
    if (ok_) budget_.release(bytes_);
    ok_ = false;
    bytes_ = 0;
  }

 private:
  MemoryBudget budget_;
  std::int64_t bytes_ = 0;
  bool ok_ = false;
};

/// O(1) upper-bound estimate of the bytes one run of \p kind needs for
/// an instance of \p shape: residual network + CSR adjacency + that
/// backend's scratch, computed from the same sizeof() arithmetic the
/// real containers use. kAuto estimates the backend select_solver would
/// pick.
std::int64_t estimate_solver_bytes(const InstanceShape& shape,
                                   SolverKind kind);

/// Footprint bound for a robust solve of \p shape: the maximum of
/// estimate_solver_bytes over the backends the default chain can reach.
/// This is what admission control compares against a per-solve cap.
std::int64_t estimate_footprint(const InstanceShape& shape);

}  // namespace lera::netflow
