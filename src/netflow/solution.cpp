#include "netflow/solution.hpp"

#include "netflow/graph.hpp"
#include "netflow/internal_solvers.hpp"
#include "netflow/lower_bounds.hpp"

namespace lera::netflow {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
  }
  return "unknown";
}

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kSuccessiveShortestPaths:
      return "successive-shortest-paths";
    case SolverKind::kCycleCanceling:
      return "cycle-canceling";
    case SolverKind::kNetworkSimplex:
      return "network-simplex";
    case SolverKind::kCostScaling:
      return "cost-scaling";
  }
  return "unknown";
}

namespace {

FlowSolution dispatch(const Graph& g, SolverKind kind) {
  switch (kind) {
    case SolverKind::kSuccessiveShortestPaths:
      return internal::solve_ssp(g);
    case SolverKind::kCycleCanceling:
      return internal::solve_cycle_canceling(g);
    case SolverKind::kNetworkSimplex:
      return internal::solve_network_simplex(g);
    case SolverKind::kCostScaling:
      return internal::solve_cost_scaling(g);
  }
  return {};
}

}  // namespace

FlowSolution solve(const Graph& g, SolverKind kind) {
  if (!g.has_lower_bounds()) return dispatch(g, kind);

  const LowerBoundReduction red = remove_lower_bounds(g);
  FlowSolution sol = dispatch(red.reduced, kind);
  if (!sol.optimal()) return sol;
  sol.arc_flow = restore_lower_bounds(red, sol.arc_flow);
  sol.cost += red.fixed_cost;
  return sol;
}

FlowSolution solve_st_flow(const Graph& g, NodeId s, NodeId t, Flow value,
                           SolverKind kind) {
  Graph copy = g;
  copy.add_supply(s, value);
  copy.add_supply(t, -value);
  return solve(copy, kind);
}

}  // namespace lera::netflow
