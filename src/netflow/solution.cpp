#include "netflow/solution.hpp"

#include "netflow/graph.hpp"
#include "netflow/internal_solvers.hpp"
#include "netflow/lower_bounds.hpp"
#include "netflow/select.hpp"

namespace lera::netflow {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kBadInstance:
      return "bad-instance";
    case SolveStatus::kBudgetExceeded:
      return "budget-exceeded";
    case SolveStatus::kUncertified:
      return "uncertified";
    case SolveStatus::kCancelled:
      return "cancelled";
    case SolveStatus::kMemoryExceeded:
      return "memory-exceeded";
  }
  return "unknown";
}

std::string to_string(SolverKind kind) {
  switch (kind) {
    case SolverKind::kSuccessiveShortestPaths:
      return "successive-shortest-paths";
    case SolverKind::kCycleCanceling:
      return "cycle-canceling";
    case SolverKind::kNetworkSimplex:
      return "network-simplex";
    case SolverKind::kCostScaling:
      return "cost-scaling";
    case SolverKind::kAuto:
      return "auto";
  }
  return "unknown";
}

namespace internal {

FlowSolution budget_exceeded(SolverKind kind) {
  FlowSolution out;
  out.status = SolveStatus::kBudgetExceeded;
  out.message = to_string(kind) + ": iteration/time budget exhausted";
  return out;
}

namespace {

constexpr SolverBackend kBackends[] = {
    {SolverKind::kSuccessiveShortestPaths, "ssp", run_ssp},
    {SolverKind::kCycleCanceling, "cycle-canceling", run_cycle_canceling},
    {SolverKind::kNetworkSimplex, "simplex", run_network_simplex},
    {SolverKind::kCostScaling, "cost-scaling", run_cost_scaling},
};

/// Resolves a null workspace to a throwaway local arena; the legacy
/// pointer-taking wrappers and solve() both funnel through here.
FlowSolution run_backend(const SolverBackend& backend, const Graph& g,
                         SolveGuard* guard, SolverWorkspace* ws) {
  if (ws != nullptr) return backend.fn(g, guard, *ws);
  SolverWorkspace local;
  return backend.fn(g, guard, local);
}

}  // namespace

std::span<const SolverBackend> solver_backends() { return kBackends; }

const SolverBackend* find_backend(SolverKind kind) {
  for (const SolverBackend& b : kBackends) {
    if (b.kind == kind) return &b;
  }
  return nullptr;
}

FlowSolution solve_ssp(const Graph& g, SolveGuard* guard,
                       SolverWorkspace* ws) {
  return run_backend(kBackends[0], g, guard, ws);
}

FlowSolution solve_cycle_canceling(const Graph& g, SolveGuard* guard,
                                   SolverWorkspace* ws) {
  return run_backend(kBackends[1], g, guard, ws);
}

FlowSolution solve_network_simplex(const Graph& g, SolveGuard* guard,
                                   SolverWorkspace* ws) {
  return run_backend(kBackends[2], g, guard, ws);
}

FlowSolution solve_cost_scaling(const Graph& g, SolveGuard* guard,
                                SolverWorkspace* ws) {
  return run_backend(kBackends[3], g, guard, ws);
}

}  // namespace internal

namespace {

/// The canonical cooperatively-cancelled verdict.
FlowSolution cancelled_solution(SolverKind kind) {
  FlowSolution out;
  out.status = SolveStatus::kCancelled;
  out.message = to_string(kind) + ": cancelled by caller";
  return out;
}

/// The typed allocation-failure verdict: a std::bad_alloc that escaped
/// a solver run (real OOM or an injected failpoint) becomes a status,
/// never a crash.
FlowSolution memory_exceeded_solution(SolverKind kind) {
  FlowSolution out;
  out.status = SolveStatus::kMemoryExceeded;
  out.message = to_string(kind) + ": allocation failed (out of memory)";
  return out;
}

FlowSolution solve_impl(const Graph& g, SolverKind kind, SolveGuard* guard,
                        SolverWorkspace* ws);

}  // namespace

FlowSolution solve(const Graph& g, SolverKind kind, SolveGuard* guard,
                   SolverWorkspace* ws) {
  try {
    return solve_impl(g, kind, guard, ws);
  } catch (const std::bad_alloc&) {
    // The workspace may hold partially grown scratch; that is fine —
    // it is validity-stamped/re-prepared per solve and still released
    // by its owner. Nothing else escaped the failed run.
    return memory_exceeded_solution(kind);
  }
}

namespace {

FlowSolution solve_impl(const Graph& g, SolverKind kind, SolveGuard* guard,
                        SolverWorkspace* ws) {
  if (g.total_supply() != 0) {
    FlowSolution bad;
    bad.status = SolveStatus::kBadInstance;
    bad.message = "unbalanced instance: total supply is " +
                  std::to_string(g.total_supply()) +
                  ", a feasible b-flow requires 0";
    return bad;
  }
  if (kind == SolverKind::kAuto) {
    kind = select_solver(measure_shape(g));
    if (ws != nullptr) ++ws->counters.auto_selections;
  }
  const internal::SolverBackend* backend = internal::find_backend(kind);
  if (backend == nullptr) {
    FlowSolution bad;
    bad.status = SolveStatus::kBadInstance;
    bad.message = "no registered backend for solver kind " +
                  std::to_string(static_cast<int>(kind));
    return bad;
  }
  if (guard != nullptr) {
    guard->start();
    // Cheap pre-flight: an already-cancelled request never reaches a
    // solver (and never pays the lower-bound reduction below).
    if (guard->cancel.cancelled()) {
      guard->cancelled = true;
      guard->exceeded = true;
      return cancelled_solution(kind);
    }
  }

  // Solvers report any guard trip as kBudgetExceeded; rewrite the runs
  // the token stopped so callers can tell a withdrawn request from an
  // exhausted budget.
  auto relabel_cancelled = [&](FlowSolution sol) {
    if (guard != nullptr && guard->cancelled &&
        sol.status == SolveStatus::kBudgetExceeded) {
      return cancelled_solution(kind);
    }
    return sol;
  };

  if (!g.has_lower_bounds()) {
    return relabel_cancelled(internal::run_backend(*backend, g, guard, ws));
  }

  const LowerBoundReduction red = remove_lower_bounds(g);
  FlowSolution sol =
      relabel_cancelled(internal::run_backend(*backend, red.reduced, guard, ws));
  if (!sol.optimal()) return sol;
  sol.arc_flow = restore_lower_bounds(red, sol.arc_flow);
  sol.cost += red.fixed_cost;
  return sol;
}

}  // namespace

FlowSolution solve_st_flow(const Graph& g, NodeId s, NodeId t, Flow value,
                           SolverKind kind, SolveGuard* guard,
                           SolverWorkspace* ws) {
  Graph copy = g;
  copy.add_supply(s, value);
  copy.add_supply(t, -value);
  return solve(copy, kind, guard, ws);
}

}  // namespace lera::netflow
