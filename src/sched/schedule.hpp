#pragma once

#include <cassert>
#include <vector>

#include "ir/basic_block.hpp"

/// \file schedule.hpp
/// A schedule assigns every operation of a basic block a start control
/// step. Conventions (used consistently by the lifetime analysis):
///   * real operations start at step >= 1;
///   * source pseudo-ops (kInput/kConst) sit at step 0 — their values
///     exist when the block begins;
///   * kOutput pseudo-ops sit at step length()+1 — live-out values are
///     read "after the last time" by another task, exactly as variables
///     c and d in the paper's Figure 1.

namespace lera::sched {

/// Latency (control steps) of each operation; defaults to
/// ir::default_latency. Index by OpId via (*this)(op).
class LatencyModel {
 public:
  LatencyModel() = default;

  int operator()(const ir::Operation& op) const {
    return ir::default_latency(op.opcode);
  }
};

class Schedule {
 public:
  Schedule() = default;
  explicit Schedule(std::size_t num_ops) : start_(num_ops, -1) {}

  int start(ir::OpId o) const {
    assert(o >= 0 && static_cast<std::size_t>(o) < start_.size());
    return start_[static_cast<std::size_t>(o)];
  }
  void set_start(ir::OpId o, int step) {
    assert(o >= 0 && static_cast<std::size_t>(o) < start_.size());
    start_[static_cast<std::size_t>(o)] = step;
  }

  /// Last step occupied by \p op (start for zero/one-cycle ops).
  int finish(const ir::BasicBlock& bb, ir::OpId o) const {
    const int latency = LatencyModel{}(bb.op(o));
    return start(o) + (latency > 0 ? latency - 1 : 0);
  }

  /// Number of control steps x: the largest finish step of any real op.
  int length(const ir::BasicBlock& bb) const;

  std::size_t num_ops() const { return start_.size(); }

  /// Empty string if the schedule respects data dependencies and the
  /// step conventions above.
  std::string verify(const ir::BasicBlock& bb) const;

 private:
  std::vector<int> start_;
};

/// Functional-unit classes for resource-constrained scheduling.
enum class FuClass { kAlu, kMul };

/// Which FU class executes an opcode (sources/outputs use none).
FuClass fu_class(ir::Opcode op);

/// Resource budget per control step.
struct Resources {
  int alus = 2;
  int muls = 1;

  int limit(FuClass c) const { return c == FuClass::kAlu ? alus : muls; }
};

/// Unconstrained as-soon-as-possible schedule.
Schedule asap(const ir::BasicBlock& bb);

/// As-late-as-possible schedule against deadline \p latest (use
/// asap-length for the tightest feasible deadline).
Schedule alap(const ir::BasicBlock& bb, int latest);

/// Resource-constrained list scheduling with ALAP-slack priority.
Schedule list_schedule(const ir::BasicBlock& bb, const Resources& res);

}  // namespace lera::sched
