#include "sched/force_directed.hpp"

#include <algorithm>
#include <cassert>
#include <vector>

namespace lera::sched {

namespace {

int op_latency(const ir::BasicBlock& bb, ir::OpId o) {
  return LatencyModel{}(bb.op(o));
}

bool is_schedulable(const ir::Operation& op) {
  return !ir::is_source(op.opcode) && op.opcode != ir::Opcode::kOutput;
}

/// Mobility window [early, late] of each op's start step, refined as
/// operations get pinned.
struct Windows {
  std::vector<int> early;
  std::vector<int> late;
};

/// Recomputes windows from dependencies given the currently pinned ops
/// (pinned ops have early == late == their start).
Windows compute_windows(const ir::BasicBlock& bb, int latency,
                        const std::vector<int>& pinned) {
  const std::size_t n = bb.num_ops();
  Windows w;
  w.early.assign(n, 1);
  w.late.assign(n, latency);

  // Forward pass (ops are stored topologically).
  for (const ir::Operation& op : bb.ops()) {
    if (!is_schedulable(op)) continue;
    int early = 1;
    for (ir::ValueId operand : op.operands) {
      const ir::OpId def = bb.value(operand).def;
      if (ir::is_source(bb.op(def).opcode)) continue;
      early = std::max(
          early, w.early[static_cast<std::size_t>(def)] + op_latency(bb, def));
    }
    if (pinned[static_cast<std::size_t>(op.id)] > 0) {
      early = pinned[static_cast<std::size_t>(op.id)];
    }
    w.early[static_cast<std::size_t>(op.id)] = early;
  }

  // Backward pass.
  for (auto it = bb.ops().rbegin(); it != bb.ops().rend(); ++it) {
    const ir::Operation& op = *it;
    if (!is_schedulable(op)) continue;
    int late = latency - op_latency(bb, op.id) + 1;
    for (ir::OpId use : bb.value(op.result).uses) {
      if (bb.op(use).opcode == ir::Opcode::kOutput) continue;
      late = std::min(late,
                      w.late[static_cast<std::size_t>(use)] -
                          op_latency(bb, op.id));
    }
    if (pinned[static_cast<std::size_t>(op.id)] > 0) {
      late = pinned[static_cast<std::size_t>(op.id)];
    }
    w.late[static_cast<std::size_t>(op.id)] = late;
  }
  return w;
}

/// Distribution graphs: expected number of ops of each FU class active
/// at every step, assuming each op starts uniformly in its window.
std::vector<std::vector<double>> distribution(const ir::BasicBlock& bb,
                                              int latency,
                                              const Windows& w) {
  std::vector<std::vector<double>> dg(
      2, std::vector<double>(static_cast<std::size_t>(latency) + 2, 0.0));
  for (const ir::Operation& op : bb.ops()) {
    if (!is_schedulable(op)) continue;
    const int e = w.early[static_cast<std::size_t>(op.id)];
    const int l = w.late[static_cast<std::size_t>(op.id)];
    if (l < e) continue;  // Over-constrained; caller detects infeasibility.
    const double prob = 1.0 / (l - e + 1);
    const int lat = op_latency(bb, op.id);
    auto& row = dg[fu_class(op.opcode) == FuClass::kAlu ? 0 : 1];
    for (int start = e; start <= l; ++start) {
      for (int k = 0; k < lat; ++k) {
        const int step = start + k;
        if (step >= 1 && step <= latency + 1) {
          row[static_cast<std::size_t>(step)] += prob;
        }
      }
    }
  }
  return dg;
}

}  // namespace

Schedule force_directed_schedule(const ir::BasicBlock& bb, int latency) {
  const std::size_t n = bb.num_ops();
  std::vector<int> pinned(n, 0);
  Schedule sched(n);

  std::size_t remaining = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (is_schedulable(op)) ++remaining;
  }

  while (remaining > 0) {
    const Windows w = compute_windows(bb, latency, pinned);
    const auto dg = distribution(bb, latency, w);

    // Pick the (op, step) assignment with the lowest self force.
    ir::OpId best_op = -1;
    int best_step = -1;
    double best_force = 0;
    for (const ir::Operation& op : bb.ops()) {
      if (!is_schedulable(op) || pinned[static_cast<std::size_t>(op.id)]) {
        continue;
      }
      const int e = w.early[static_cast<std::size_t>(op.id)];
      const int l = w.late[static_cast<std::size_t>(op.id)];
      assert(l >= e && "latency bound below the critical path");
      const int lat = op_latency(bb, op.id);
      const double prob = 1.0 / (l - e + 1);
      const auto& row = dg[fu_class(op.opcode) == FuClass::kAlu ? 0 : 1];

      // Mean DG value over the op's whole window (its current expected
      // contribution background).
      double mean = 0;
      for (int start = e; start <= l; ++start) {
        for (int k = 0; k < lat; ++k) {
          mean += row[static_cast<std::size_t>(start + k)];
        }
      }
      mean *= prob;

      for (int start = e; start <= l; ++start) {
        double here = 0;
        for (int k = 0; k < lat; ++k) {
          here += row[static_cast<std::size_t>(start + k)];
        }
        const double force = here - mean;
        if (best_op < 0 || force < best_force - 1e-12) {
          best_op = op.id;
          best_step = start;
          best_force = force;
        }
      }
    }

    assert(best_op >= 0);
    pinned[static_cast<std::size_t>(best_op)] = best_step;
    sched.set_start(best_op, best_step);
    --remaining;
  }

  // Pseudo-op placement mirrors the list scheduler's conventions.
  for (const ir::Operation& op : bb.ops()) {
    if (ir::is_source(op.opcode)) sched.set_start(op.id, 0);
  }
  const int x = sched.length(bb);
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == ir::Opcode::kOutput) sched.set_start(op.id, x + 1);
  }
  return sched;
}

FuUsage measure_fu_usage(const ir::BasicBlock& bb, const Schedule& sched) {
  FuUsage usage;
  const int x = sched.length(bb);
  for (int step = 1; step <= x; ++step) {
    int alus = 0;
    int muls = 0;
    for (const ir::Operation& op : bb.ops()) {
      if (!is_schedulable(op)) continue;
      if (sched.start(op.id) <= step && step <= sched.finish(bb, op.id)) {
        (fu_class(op.opcode) == FuClass::kAlu ? alus : muls)++;
      }
    }
    usage.peak_alus = std::max(usage.peak_alus, alus);
    usage.peak_muls = std::max(usage.peak_muls, muls);
  }
  return usage;
}

}  // namespace lera::sched
