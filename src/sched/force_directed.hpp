#pragma once

#include "sched/schedule.hpp"

/// \file force_directed.hpp
/// Force-directed scheduling (Paulin & Knight), the classic
/// time-constrained HLS scheduler: operations are placed one at a time
/// at the control step that minimises the "force" — the increase in the
/// expected concurrency of their functional-unit class — balancing FU
/// usage across the latency budget. The paper's methodology (§5)
/// performs "detailed scheduling of computations within each task"
/// before the allocation flow runs; this gives LERA a time-constrained
/// option next to the resource-constrained list scheduler.

namespace lera::sched {

/// Schedules \p bb within \p latency control steps (must be >= the ASAP
/// length; pass asap(bb).length(bb) for the tightest bound). Ties are
/// broken deterministically.
Schedule force_directed_schedule(const ir::BasicBlock& bb, int latency);

/// Peak per-step usage of each FU class under a schedule (useful to
/// compare schedulers: force-directed should balance, ASAP piles up).
struct FuUsage {
  int peak_alus = 0;
  int peak_muls = 0;
};
FuUsage measure_fu_usage(const ir::BasicBlock& bb, const Schedule& sched);

}  // namespace lera::sched
