#include "sched/schedule.hpp"

#include <algorithm>
#include <sstream>

namespace lera::sched {

int Schedule::length(const ir::BasicBlock& bb) const {
  int x = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (ir::is_source(op.opcode) || op.opcode == ir::Opcode::kOutput) {
      continue;
    }
    x = std::max(x, finish(bb, op.id));
  }
  return x;
}

std::string Schedule::verify(const ir::BasicBlock& bb) const {
  std::ostringstream os;
  const int x = length(bb);
  for (const ir::Operation& op : bb.ops()) {
    const int s = start(op.id);
    if (ir::is_source(op.opcode)) {
      if (s != 0) os << "source op " << op.id << " not at step 0; ";
      continue;
    }
    if (op.opcode == ir::Opcode::kOutput) {
      if (s != x + 1) os << "output op " << op.id << " not at step x+1; ";
      continue;
    }
    if (s < 1) os << "op " << op.id << " starts before step 1; ";
    for (ir::ValueId operand : op.operands) {
      const ir::OpId def = bb.value(operand).def;
      if (ir::is_source(bb.op(def).opcode)) continue;
      // A value is available at the end of its defining op's last step;
      // chaining within a step is not modelled, so a consumer must start
      // strictly later.
      if (s <= finish(bb, def)) {
        os << "op " << op.id << " starts at " << s << " but operand "
           << bb.value(operand).name << " finishes at " << finish(bb, def)
           << "; ";
      }
    }
  }
  return os.str();
}

FuClass fu_class(ir::Opcode op) {
  switch (op) {
    case ir::Opcode::kMul:
    case ir::Opcode::kMac:
    case ir::Opcode::kDiv:
      return FuClass::kMul;
    default:
      return FuClass::kAlu;
  }
}

namespace {

int op_latency(const ir::BasicBlock& bb, ir::OpId o) {
  return LatencyModel{}(bb.op(o));
}

bool is_schedulable(const ir::Operation& op) {
  return !ir::is_source(op.opcode) && op.opcode != ir::Opcode::kOutput;
}

/// Places source ops at 0 and output ops at length+1 after the real ops
/// have been placed.
void finalize_pseudo_ops(const ir::BasicBlock& bb, Schedule& sched) {
  const int x = sched.length(bb);
  for (const ir::Operation& op : bb.ops()) {
    if (ir::is_source(op.opcode)) {
      sched.set_start(op.id, 0);
    } else if (op.opcode == ir::Opcode::kOutput) {
      sched.set_start(op.id, x + 1);
    }
  }
}

}  // namespace

Schedule asap(const ir::BasicBlock& bb) {
  Schedule sched(bb.num_ops());
  for (const ir::Operation& op : bb.ops()) {
    if (!is_schedulable(op)) continue;
    int earliest = 1;
    for (ir::ValueId operand : op.operands) {
      const ir::OpId def = bb.value(operand).def;
      if (ir::is_source(bb.op(def).opcode)) continue;
      earliest = std::max(earliest,
                          sched.start(def) + op_latency(bb, def));
    }
    sched.set_start(op.id, earliest);
  }
  finalize_pseudo_ops(bb, sched);
  return sched;
}

Schedule alap(const ir::BasicBlock& bb, int latest) {
  Schedule sched(bb.num_ops());
  // Walk ops in reverse topological (= reverse emission) order.
  for (auto it = bb.ops().rbegin(); it != bb.ops().rend(); ++it) {
    const ir::Operation& op = *it;
    if (!is_schedulable(op)) continue;
    int deadline = latest - op_latency(bb, op.id) + 1;
    for (ir::OpId use : bb.value(op.result).uses) {
      if (bb.op(use).opcode == ir::Opcode::kOutput) continue;
      deadline = std::min(deadline, sched.start(use) - op_latency(bb, op.id));
    }
    sched.set_start(op.id, deadline);
  }
  finalize_pseudo_ops(bb, sched);
  return sched;
}

Schedule list_schedule(const ir::BasicBlock& bb, const Resources& res) {
  const Schedule asap_sched = asap(bb);
  const Schedule alap_sched = alap(bb, asap_sched.length(bb) * 4 + 4);

  Schedule sched(bb.num_ops());
  std::vector<char> placed(bb.num_ops(), 0);
  std::size_t remaining = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (is_schedulable(op)) ++remaining;
  }

  for (int step = 1; remaining > 0; ++step) {
    // Busy FU slots from multi-cycle ops still executing this step.
    int busy_alu = 0;
    int busy_mul = 0;
    for (const ir::Operation& op : bb.ops()) {
      if (!is_schedulable(op) || !placed[static_cast<std::size_t>(op.id)]) {
        continue;
      }
      if (sched.start(op.id) <= step && step <= sched.finish(bb, op.id)) {
        (fu_class(op.opcode) == FuClass::kAlu ? busy_alu : busy_mul)++;
      }
    }

    // Ready ops: all operand defs placed and finished before this step.
    std::vector<ir::OpId> ready;
    for (const ir::Operation& op : bb.ops()) {
      if (!is_schedulable(op) || placed[static_cast<std::size_t>(op.id)]) {
        continue;
      }
      bool ok = true;
      for (ir::ValueId operand : op.operands) {
        const ir::OpId def = bb.value(operand).def;
        if (ir::is_source(bb.op(def).opcode)) continue;
        if (!placed[static_cast<std::size_t>(def)] ||
            sched.finish(bb, def) >= step) {
          ok = false;
          break;
        }
      }
      if (ok) ready.push_back(op.id);
    }
    // Urgency: earlier ALAP step first (least slack).
    std::stable_sort(ready.begin(), ready.end(),
                     [&](ir::OpId a, ir::OpId b) {
                       return alap_sched.start(a) < alap_sched.start(b);
                     });

    for (ir::OpId o : ready) {
      const FuClass c = fu_class(bb.op(o).opcode);
      int& busy = c == FuClass::kAlu ? busy_alu : busy_mul;
      if (busy >= res.limit(c)) continue;
      ++busy;
      sched.set_start(o, step);
      placed[static_cast<std::size_t>(o)] = 1;
      --remaining;
    }
  }

  finalize_pseudo_ops(bb, sched);
  return sched;
}

}  // namespace lera::sched
