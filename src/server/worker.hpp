#pragma once

#include <cstdint>
#include <string>

#include "alloc/allocator.hpp"
#include "engine/engine.hpp"
#include "netflow/fault_injection.hpp"
#include "server/admission.hpp"
#include "server/metrics.hpp"
#include "server/stream.hpp"

/// \file worker.hpp
/// The worker side of the crash-isolated serving mode, plus the
/// response-line vocabulary it shares with the in-process path.
///
/// In isolated mode (`lera_server --workers N`) solves never run inside
/// the daemon: the supervisor (supervisor.hpp) forks worker
/// subprocesses and dispatches each admitted SOLVE frame to one of them
/// over the existing FdStream/framing wire protocol. The child calls
/// worker_loop(): a single-request loop that decodes one frame at a
/// time, solves it under the worker's own engine (threads=1, its own
/// memory budget), and writes back exactly one verdict line — the same
/// `LERA_RESULT`/`LERA_ERROR`/`LERA_TIMEOUT`/`LERA_CANCELLED` lines the
/// in-process writer emits, produced by the same formatting functions
/// below, so the two modes are byte-identical on the happy path.
///
/// A worker that dies mid-request (real bug, injected CrashFailpoint,
/// kernel OOM kill) simply never writes its line; the supervisor turns
/// that silence into a typed `worker_crashed` verdict. Nothing in this
/// file tries to survive a crash — that is the point: workers are
/// allowed to be crash-only, the *daemon* is not.

namespace lera::server {

/// Everything a worker subprocess needs to serve requests. Plumbed
/// through SupervisorOptions; the fork inherits it by memory, no exec.
struct WorkerConfig {
  /// Engine configuration for the worker's private engine. The worker
  /// forces threads=1 (strictly sequential, no pool threads — a forked
  /// child must not depend on parent threads) and
  /// alloc.fallback_to_baseline like the in-process server does.
  engine::EngineOptions engine;
  /// Append assign= to LERA_RESULT lines (ServerOptions::echo_assignment).
  bool echo_assignment = true;
  /// Seeded crash injection (chaos harness / CI drills). Disarmed by
  /// default; the supervisor decorrelates the seed per worker slot.
  netflow::CrashFailpoint::Options crash;
};

/// Newline/CR-stripping for diagnostics that travel inside one response
/// line, so payload-derived text cannot forge protocol structure.
std::string sanitize_detail(std::string text);

/// "LERA_REJECT <id> reason=<r> [detail=...]\n".
std::string reject_line(const std::string& id, RejectReason reason,
                        const std::string& detail);

/// The disjoint terminal state of one finished solve (metrics.hpp).
Terminal classify_result(const alloc::AllocationResult& r);

/// The single verdict line for one finished solve — shared by the
/// in-process writer loop (server.cpp) and worker_loop() so both modes
/// emit byte-identical responses. \p static_model selects which energy
/// total LERA_RESULT reports.
std::string format_verdict_line(const std::string& id,
                                const alloc::AllocationResult& r,
                                Terminal terminal, double latency_ms,
                                bool echo_assignment, bool static_model);

/// Runs the worker side of the supervisor protocol on \p stream until
/// end-of-stream (supervisor gone) or a crash. Builds one private
/// engine up front and serves SOLVE frames one at a time, each answered
/// with exactly one verdict line; PING frames answer LERA_PONG (the
/// supervisor's liveness probe). Returns the process exit code (0 on
/// orderly end-of-stream) — the forked child passes it to _exit(), and
/// tests call it in-process over a MemoryChannel.
int worker_loop(ByteStream& stream, const WorkerConfig& config);

/// FNV-1a fingerprint of a request payload: the identity under which
/// crashes are counted, poison is quarantined, and crash-corpus
/// reproducers are named. Byte-exact: two payloads share a fingerprint
/// only if they are byte-identical (modulo hash collisions).
std::uint64_t payload_fingerprint(const std::string& payload);

/// Fixed-width lowercase-hex rendering of a fingerprint (file names,
/// detail= fields).
std::string fingerprint_hex(std::uint64_t fingerprint);

}  // namespace lera::server
