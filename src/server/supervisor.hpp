#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netflow/cancel.hpp"
#include "server/worker.hpp"

/// \file supervisor.hpp
/// The parent side of the crash-isolated serving mode: a supervised
/// pool of forked worker subprocesses (worker.hpp), each solving one
/// request at a time over a private socketpair speaking the existing
/// frame/verdict wire protocol.
///
/// The contract the rest of the server buys from this layer:
///  - A worker death — SIGSEGV, abort, nonzero exit, kernel OOM-kill —
///    never harms the daemon. The supervisor reaps the corpse with
///    waitpid, types the death ("signal 11", "exit 3", ...), and the
///    affected request resolves to a machine-readable worker_crashed
///    verdict. Nothing is ever silently dropped: every dispatched
///    request resolves to exactly one WorkerVerdict.
///  - Crashed slots respawn with jittered exponential backoff (the
///    PR 4 retry discipline), so a crash storm cannot turn into a
///    fork bomb; the streak resets on the first healthy verdict.
///  - Poison requests cannot wedge the pool: crashes are counted per
///    payload fingerprint (byte-exact FNV-1a), and once a fingerprint
///    reaches poison_threshold it is quarantined — byte-identical
///    resubmissions are refused up front with a typed `quarantined`
///    verdict instead of burning another worker.
///  - Every crashing payload is serialized byte-identically to
///    crash_dir/crash-<fingerprint>-<n>.lt, a ready-made reproducer
///    for fuzz_tool/shrink triage (the server parsed it before
///    dispatch, so the corpus file is loadable by construction).
///
/// Threading: one dispatcher thread per slot owns that slot's process
/// and socket outright; dispatch() only enqueues, so the server's
/// reader thread never blocks on a worker.

namespace lera::server {

struct SupervisorOptions {
  /// Number of worker subprocesses. 0 disables isolation entirely (the
  /// server solves in-process, bit-identical to the pre-supervisor
  /// behavior); this is the default.
  int workers = 0;
  /// Configuration inherited by every worker (engine options, response
  /// shape, optional crash injection). The supervisor decorrelates the
  /// crash seed per slot.
  WorkerConfig worker;
  /// Directory for crash-corpus reproducers. "" = keep no corpus.
  std::string crash_dir;
  /// Crashes on one payload fingerprint before it is quarantined.
  int poison_threshold = 3;
  /// Base/cap of the jittered exponential respawn backoff.
  double restart_backoff_seconds = 0.05;
  double restart_backoff_cap_seconds = 2.0;
  std::uint64_t backoff_seed = 1;
  /// A worker that produced no verdict this long past the request's own
  /// deadline is declared hung and killed (typed as a crash). Only
  /// armed for requests that carry a deadline.
  double hang_grace_seconds = 5.0;
  /// Announce "LERA_WORKER slot=<i> pid=<p>" on stderr at every spawn,
  /// so ops harnesses (and the CI kill -9 drill) can target a live
  /// worker without guessing.
  bool announce_workers = false;
};

/// How one dispatched request resolved.
enum class WorkerVerdictKind {
  kLine,           ///< The worker answered: `line` is its verdict line.
  kWorkerCrashed,  ///< The worker died mid-request (typed in `detail`).
  kQuarantined,    ///< Refused up front: fingerprint is quarantined.
  kCancelled,      ///< Withdrawn (drain/disconnect) before completion.
};

struct WorkerVerdict {
  WorkerVerdictKind kind = WorkerVerdictKind::kCancelled;
  std::string line;    ///< kLine: complete "\n"-terminated verdict.
  std::string detail;  ///< Crash/quarantine/cancel diagnostic.
};

/// One in-flight isolated solve, shared between the server's writer
/// thread (waits, may cancel) and the slot thread (resolves it).
class PendingSolve {
 public:
  /// Blocks up to \p seconds; true once the verdict is in.
  bool wait_for(double seconds);
  /// Withdraws the request: resolves promptly (kCancelled), killing the
  /// worker if it is already mid-solve. Idempotent.
  void cancel();
  bool done() const;
  /// Valid once done().
  const WorkerVerdict& verdict() const { return verdict_; }

 private:
  friend class Supervisor;

  void resolve(WorkerVerdictKind kind, std::string line,
               std::string detail);

  std::string id_;
  std::string payload_;
  long long deadline_ms_ = -1;
  std::uint64_t fingerprint_ = 0;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  bool cancelled_ = false;
  /// A slot thread took ownership; cancel() must not resolve inline.
  bool claimed_ = false;
  WorkerVerdict verdict_;
};

/// Monotonic counters for HEALTH/STATS/bench observability.
struct SupervisorStats {
  std::int64_t spawned = 0;   ///< fork()s that produced a worker.
  std::int64_t crashes = 0;   ///< Abnormal deaths mid-request (incl. hangs).
  std::int64_t restarts = 0;  ///< Respawns after a death (any cause).
  std::int64_t hung_kills = 0;        ///< Hang-watchdog SIGKILLs.
  std::int64_t quarantined_fingerprints = 0;
  std::int64_t quarantine_rejects = 0;  ///< Requests refused up front.
  std::int64_t corpus_files = 0;        ///< Reproducers written.
  int workers_alive = 0;
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorOptions options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  bool enabled() const { return options_.workers > 0; }

  /// Enqueues one admitted, pre-parsed SOLVE for isolated execution and
  /// returns its handle. Quarantined fingerprints resolve immediately
  /// (kQuarantined) without touching a worker.
  std::shared_ptr<PendingSolve> dispatch(const std::string& id,
                                         const std::string& payload,
                                         long long deadline_ms);

  /// Stops accepting the queue past \p grace_seconds from now: requests
  /// not yet dispatched by then resolve kCancelled, mirroring the
  /// server's drain discipline. (The server's writer additionally
  /// cancels in-flight pendings at its own drain deadline.)
  void begin_drain(double grace_seconds);

  SupervisorStats stats() const;

  /// Live worker pids (ops/chaos tooling: pick a target to kill -9).
  std::vector<int> worker_pids() const;

 private:
  struct Slot;

  void slot_main(Slot& slot);
  bool ensure_worker(Slot& slot, PendingSolve& req);
  void spawn_worker(Slot& slot);
  void retire_worker(Slot& slot, bool kill_hard);
  void serve_one(Slot& slot, PendingSolve& req);
  void on_worker_crash(Slot& slot, PendingSolve& req,
                       const std::string& how);
  std::string record_crash(PendingSolve& req);
  std::shared_ptr<PendingSolve> next_request();
  double backoff_seconds(int streak);
  bool drain_expired() const;

  SupervisorOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;

  mutable std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<std::shared_ptr<PendingSolve>> queue_;
  bool shutting_down_ = false;
  bool draining_ = false;
  netflow::Deadline drain_deadline_;

  mutable std::mutex poison_mutex_;
  std::unordered_map<std::uint64_t, int> crash_counts_;
  std::unordered_set<std::uint64_t> quarantined_;

  mutable std::mutex stats_mutex_;
  SupervisorStats stats_;
  std::uint64_t backoff_state_ = 0;
};

}  // namespace lera::server
