#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file framing.hpp
/// Length-framed wire format for the allocation server, plus the
/// hardened incremental decoder. One frame is an ASCII header line
/// followed by exactly `payload_len` raw bytes:
///
///   SOLVE <payload_len> [id=<tok>] [tenant=<tok>] [deadline_ms=<n>]\n
///   <payload_len bytes of problem_io .lt text>
///
/// Verbs: SOLVE (payload = .lt problem), and the zero-payload control
/// verbs HEALTH, STATS, DRAIN, PING. Blank lines between frames are
/// tolerated (telnet-friendliness), as is a '\r' before the '\n'.
/// Unknown `key=value` tokens are ignored for forward compatibility.
///
/// The decoder is built for adversarial input: it is fed arbitrary
/// byte chunks (a slowloris client dribbling one byte at a time costs
/// nothing extra), never buffers more than the configured frame cap
/// plus one header, and turns every malformed input into a *typed*
/// event — truncated frames, oversized declarations, garbage headers,
/// over-long headers — instead of desynchronising or growing memory.
/// An oversized-but-well-formed frame is rejected up front and its
/// payload is skipped unbuffered, so the connection survives to serve
/// the next frame.

namespace lera::server {

enum class FrameVerb { kSolve, kHealth, kStats, kDrain, kPing };

std::string to_string(FrameVerb verb);

/// One well-formed frame.
struct Frame {
  FrameVerb verb = FrameVerb::kSolve;
  std::string id;          ///< Client request id; "" = server assigns.
  std::string tenant;      ///< "" = the default tenant.
  long long deadline_ms = -1;  ///< -1 = no per-request deadline given.
  std::string payload;
};

/// Why a frame was thrown out. Mirrors the LERA_REJECT reasons the
/// server emits for transport-level garbage.
enum class FrameError {
  kBadFrame,       ///< Garbage/truncated header or truncated payload.
  kFrameTooLarge,  ///< Declared payload exceeds the configured cap.
};

std::string to_string(FrameError error);

/// One decoder output: either a Frame or a typed decode failure. The
/// id is carried even for failures when the header got far enough to
/// name one, so rejections can still be correlated by the client.
struct FrameEvent {
  bool ok = false;
  Frame frame;         ///< Valid when ok.
  FrameError error = FrameError::kBadFrame;  ///< Valid when !ok.
  std::string id;      ///< Best-effort id for !ok events.
  std::string detail;  ///< Human-readable diagnostic for !ok events.
};

/// Incremental, bounded-memory frame decoder; one per connection.
class FrameDecoder {
 public:
  struct Options {
    /// Hard cap on one frame's payload. Larger declarations are
    /// rejected as kFrameTooLarge and skipped without buffering.
    std::size_t max_frame_bytes = 1 << 20;
    /// Cap on the header line (including the newline).
    std::size_t max_header_bytes = 256;
  };

  FrameDecoder() : FrameDecoder(Options()) {}
  explicit FrameDecoder(Options options);

  /// Consumes one chunk of bytes (any size, including 1) and returns
  /// the frames/failures completed by it, in stream order.
  std::vector<FrameEvent> feed(std::string_view bytes);

  /// Signals end-of-stream. Returns the typed failure for a frame
  /// left incomplete (truncated mid-header or mid-payload), if any.
  std::optional<FrameEvent> finish();

  /// Bytes currently buffered — bounded by
  /// max_header_bytes + max_frame_bytes by construction; tests assert
  /// this never grows past the caps whatever the input.
  std::size_t buffered_bytes() const;

 private:
  enum class State { kHeader, kPayload, kSkipPayload, kResync };

  void parse_header(const std::string& line, std::vector<FrameEvent>& out);

  Options options_;
  State state_ = State::kHeader;
  std::string header_;        ///< Partial header line (kHeader/kResync).
  Frame pending_;             ///< Frame under construction (kPayload).
  std::string pending_id_;    ///< Id of the frame being skipped.
  std::size_t remaining_ = 0; ///< Payload bytes still owed.
  std::size_t declared_ = 0;  ///< Declared payload size (diagnostics).
};

/// Serialises one frame in the wire format above (the encode side used
/// by clients: the bench's load generator and the tests).
std::string encode_frame(const Frame& frame);

}  // namespace lera::server
