#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <optional>
#include <sstream>
#include <thread>

#include "alloc/flow_graph.hpp"
#include "server/worker.hpp"
#include "workloads/problem_io.hpp"

namespace lera::server {

// sanitize_detail / reject_line / classify_result / format_verdict_line
// live in worker.hpp: the isolated worker loop must emit byte-identical
// response lines, so both paths share one implementation.

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Maps a worker's verdict line back to the terminal state it already
/// classified (the line was produced by format_verdict_line, so the
/// prefix vocabulary is closed). nullopt = not a terminal (the worker
/// rejected its payload).
std::optional<Terminal> classify_worker_line(const std::string& line) {
  if (line.rfind("LERA_RESULT ", 0) == 0) {
    return line.find(" status=degraded ") != std::string::npos
               ? Terminal::kDegraded
               : Terminal::kServed;
  }
  if (line.rfind("LERA_ERROR ", 0) == 0) return Terminal::kInfeasible;
  if (line.rfind("LERA_TIMEOUT ", 0) == 0) return Terminal::kTimedOut;
  if (line.rfind("LERA_CANCELLED ", 0) == 0) return Terminal::kCancelled;
  return std::nullopt;
}

/// Pulls the worker-side solve latency out of a LERA_RESULT line so the
/// parent can split its own end-to-end latency into queue wait vs solve
/// time, mirroring the in-process wall-seconds split. 0 when absent.
double parse_worker_latency_ms(const std::string& line) {
  const std::size_t pos = line.find(" latency_ms=");
  if (pos == std::string::npos) return 0;
  return std::strtod(line.c_str() + pos + 12, nullptr);
}

}  // namespace

/// One queued response slot, produced by the reader and consumed by
/// the writer in frame order.
struct Server::ConnEntry {
  /// Ready-made response (rejections, control verbs).
  std::string ready_text;
  /// Pending solve: one single-ticket session per request, so each
  /// request carries its own cancel token chained under the engine's
  /// shutdown token.
  std::optional<engine::Session> session;
  std::size_t ticket = 0;
  /// Pending isolated solve (supervisor.hpp); set instead of session
  /// when the server runs with worker isolation enabled.
  std::shared_ptr<PendingSolve> pending;
  std::string id;
  std::string tenant;
  Clock::time_point admitted_at{};
};

/// Per-connection state shared by the reader (serve's caller thread)
/// and the writer thread. Entries flow reader -> writer in frame
/// order; responses are written strictly in that order, so pipe-mode
/// output is deterministic.
struct Server::Conn {
  explicit Conn(ByteStream& s) : stream(s) {}

  ByteStream& stream;
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<ConnEntry> queue;
  bool reader_done = false;
  /// Writer-only: a response write failed; the peer is gone. Remaining
  /// solves are cancelled and accounted, never silently dropped.
  bool client_gone = false;
};

Server::Server(ServerOptions options) : options_(std::move(options)),
      admission_(options_.admission),
      metrics_(options_.metrics) {
  // Anytime answers under load: a deadline-hit flow solve must degrade
  // to the two-phase baseline (flagged), not stall or die.
  options_.engine.alloc.fallback_to_baseline = true;
  engine_ = std::make_unique<engine::Engine>(options_.engine);
  if (options_.isolation.workers > 0) {
    // Workers inherit the server's engine configuration and response
    // shape; the supervisor forces per-worker sequential solving.
    options_.isolation.worker.engine = options_.engine;
    options_.isolation.worker.echo_assignment = options_.echo_assignment;
    supervisor_ = std::make_unique<Supervisor>(options_.isolation);
  }
}

Server::~Server() {
  // ~Engine fires the shutdown token and drains the pool; any Session
  // still queued winds down to a terminal (cancelled) state first.
  engine_.reset();
}

std::string Server::next_auto_id() {
  return "#" + std::to_string(
                   auto_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void Server::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (drain_deadline_.unlimited()) {
      drain_deadline_ =
          netflow::Deadline::after(options_.drain_grace_seconds);
    }
  }
  admission_.begin_drain();
  if (supervisor_) {
    supervisor_->begin_drain(options_.drain_grace_seconds);
  }
  draining_.store(true, std::memory_order_release);
}

HealthStatus Server::health() const {
  const MetricsSnapshot s = metrics_.snapshot();
  HealthStatus h;
  h.overloaded = s.watchdog_tripped;
  h.draining = draining();
  h.in_flight = admission_.in_flight();
  h.estimated_queue_wait_ms = admission_.estimated_queue_wait_ms();
  h.queue_p95_ms = s.queue_wait.p95_ms;
  h.shed_total = s.rejected_total;
  const netflow::MemoryBudget budget = engine_->memory_budget();
  h.memory_bytes_in_use = budget.used();
  h.memory_peak_bytes = budget.peak();
  h.memory_cap_bytes = options_.engine.max_bytes_total;
  if (supervisor_) {
    const SupervisorStats w = supervisor_->stats();
    h.isolation_enabled = true;
    h.workers_alive = w.workers_alive;
    h.worker_crashes = w.crashes;
    h.worker_restarts = w.restarts;
    h.quarantined_fingerprints = w.quarantined_fingerprints;
  }
  return h;
}

void Server::handle_solve(Conn& conn, Frame frame, const std::string& id) {
  const std::string tenant =
      frame.tenant.empty() ? std::string("default") : frame.tenant;
  ConnEntry entry;
  entry.id = id;

  // Admission first — overload is shed before the payload is parsed,
  // let alone solved.
  const AdmissionVerdict verdict = admission_.try_admit(
      tenant, static_cast<double>(frame.deadline_ms));
  if (!verdict.admitted) {
    metrics_.on_reject(verdict.reason);
    entry.ready_text = reject_line(id, verdict.reason, verdict.detail);
  } else {
    const workloads::ProblemParseResult parsed =
        workloads::parse_problem(frame.payload, options_.engine.params);
    if (!parsed.ok()) {
      // The parser's diagnostic maps to a typed bad_request rejection;
      // the connection (and the process) live on.
      admission_.release(tenant);
      metrics_.on_reject(RejectReason::kBadRequest);
      entry.ready_text =
          reject_line(id, RejectReason::kBadRequest, parsed.error);
    } else {
      // Footprint-based admission: a request whose predicted solve
      // footprint exceeds the configured memory cap would only be
      // refused by the budget (or degraded) after burning a queue
      // slot, so shed it now with a typed reason instead.
      std::int64_t cap = options_.engine.max_bytes_per_solve;
      const std::int64_t total = options_.engine.max_bytes_total;
      if (total > 0 && (cap == 0 || total < cap)) cap = total;
      const std::int64_t predicted =
          cap > 0 ? alloc::estimate_problem_footprint(*parsed.problem)
                  : 0;
      if (cap > 0 && predicted > cap) {
        admission_.release(tenant);
        metrics_.on_reject(RejectReason::kMemoryInfeasible);
        entry.ready_text = reject_line(
            id, RejectReason::kMemoryInfeasible,
            "predicted solve footprint of " + std::to_string(predicted) +
                " bytes exceeds the " + std::to_string(cap) +
                "-byte memory cap");
      } else if (supervisor_) {
        // Isolated mode: ship the already-vetted payload to the worker
        // pool. Parsing it here first is load-bearing — it guarantees
        // any crash-corpus reproducer the supervisor writes is
        // loadable, and keeps admission semantics identical.
        entry.tenant = tenant;
        entry.admitted_at = Clock::now();
        entry.pending =
            supervisor_->dispatch(id, frame.payload, frame.deadline_ms);
      } else {
        entry.session.emplace(engine_->open_session());
        entry.tenant = tenant;
        entry.admitted_at = Clock::now();
        entry.ticket = entry.session->submit(
            std::move(*parsed.problem),
            frame.deadline_ms > 0 ? frame.deadline_ms / 1000.0 : 0.0);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.queue.push_back(std::move(entry));
  }
  conn.cv.notify_all();
}

void Server::handle_event(Conn& conn, FrameEvent event) {
  metrics_.on_frame();
  std::string ready;
  if (!event.ok) {
    const RejectReason reason = event.error == FrameError::kFrameTooLarge
                                    ? RejectReason::kFrameTooLarge
                                    : RejectReason::kBadFrame;
    metrics_.on_reject(reason);
    const std::string id =
        event.id.empty() ? next_auto_id() : event.id;
    ready = reject_line(id, reason, event.detail);
  } else {
    Frame& frame = event.frame;
    const std::string id =
        frame.id.empty() ? next_auto_id() : frame.id;
    switch (frame.verb) {
      case FrameVerb::kSolve:
        metrics_.on_solve_request();
        handle_solve(conn, std::move(frame), id);
        return;
      case FrameVerb::kHealth: {
        const HealthStatus h = health();
        std::ostringstream os;
        os << "LERA_HEALTH " << id << " status=" << h.status_word()
           << " in_flight=" << h.in_flight << " est_queue_wait_ms="
           << h.estimated_queue_wait_ms << " queue_p95_ms="
           << h.queue_p95_ms << " shed=" << h.shed_total
           << " mem_bytes=" << h.memory_bytes_in_use
           << " mem_peak_bytes=" << h.memory_peak_bytes
           << " mem_cap_bytes=" << h.memory_cap_bytes;
        if (h.isolation_enabled) {
          // Gated on isolation so default-mode HEALTH output stays
          // byte-identical to the pre-supervisor server.
          os << " workers_alive=" << h.workers_alive
             << " worker_crashes=" << h.worker_crashes
             << " worker_restarts=" << h.worker_restarts
             << " quarantined=" << h.quarantined_fingerprints;
        }
        os << "\n";
        ready = os.str();
        break;
      }
      case FrameVerb::kStats: {
        const netflow::MemoryBudget budget = engine_->memory_budget();
        std::ostringstream os;
        metrics_.emit_metric_lines(os);
        os << "LERA_METRIC server_memory_bytes_in_use " << budget.used()
           << "\n"
           << "LERA_METRIC server_memory_peak_bytes " << budget.peak()
           << "\n"
           << "LERA_METRIC server_memory_denials " << budget.denials()
           << "\n";
        if (supervisor_) emit_supervisor_metric_lines(os);
        os << "LERA_STATS_END " << id << "\n";
        ready = os.str();
        break;
      }
      case FrameVerb::kPing:
        ready = "LERA_PONG " + id + "\n";
        break;
      case FrameVerb::kDrain:
        begin_drain();
        ready = "LERA_DRAIN " + id + " state=started grace_s=" +
                std::to_string(options_.drain_grace_seconds) + "\n";
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    ConnEntry entry;
    entry.ready_text = std::move(ready);
    conn.queue.push_back(std::move(entry));
  }
  conn.cv.notify_all();
}

void Server::writer_loop(Conn& conn) {
  const auto write_out = [&](const std::string& text) {
    if (conn.client_gone || text.empty()) return;
    if (!conn.stream.write(text)) conn.client_gone = true;
  };

  for (;;) {
    ConnEntry entry;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock, [&] {
        return !conn.queue.empty() || conn.reader_done;
      });
      if (conn.queue.empty()) break;  // reader_done and drained
      entry = std::move(conn.queue.front());
      conn.queue.pop_front();
    }

    if (entry.pending) {
      finish_isolated(conn, entry);
      continue;
    }

    if (!entry.session.has_value()) {
      write_out(entry.ready_text);
      continue;
    }

    // A peer that vanished is not worth solving for: withdraw, but
    // still wait for the terminal state so the request is accounted.
    if (conn.client_gone) entry.session->cancel(entry.ticket);

    // Wait for the result in bounded slices so an engine-wide drain
    // can step in: past the drain grace, the solve is cancelled and
    // result() blocks only until its fast-exit terminal state.
    for (;;) {
      double slice = 0.1;
      if (draining()) {
        double remaining;
        {
          std::lock_guard<std::mutex> lock(drain_mutex_);
          remaining = drain_deadline_.remaining_seconds();
        }
        if (remaining <= 0) {
          entry.session->cancel(entry.ticket);
          entry.session->result(entry.ticket);
          break;
        }
        slice = std::min(slice, remaining);
      }
      if (entry.session->wait_for(entry.ticket, slice)) break;
    }

    const alloc::AllocationResult& r =
        entry.session->result(entry.ticket);
    const double latency_ms = ms_since(entry.admitted_at);
    const double queue_wait_ms = std::max(
        0.0, latency_ms - r.solve_diagnostics.wall_seconds * 1000.0);
    const Terminal terminal = classify_result(r);

    admission_.release(entry.tenant);
    admission_.record_queue_wait_ms(queue_wait_ms);
    metrics_.on_terminal(terminal, latency_ms, queue_wait_ms);

    write_out(format_verdict_line(
        entry.id, r, terminal, latency_ms, options_.echo_assignment,
        options_.engine.params.register_model ==
            energy::RegisterModel::kStatic));
  }
}

/// Resolves one isolated (supervisor-dispatched) request: waits for its
/// verdict under the same drain discipline the in-process path uses,
/// books exactly one terminal or rejection, and relays or synthesizes
/// the response line.
void Server::finish_isolated(Conn& conn, ConnEntry& entry) {
  const auto write_out = [&](const std::string& text) {
    if (conn.client_gone || text.empty()) return;
    if (!conn.stream.write(text)) conn.client_gone = true;
  };

  // A peer that vanished is not worth solving for: withdraw, but still
  // wait for the verdict so the request is accounted.
  if (conn.client_gone) entry.pending->cancel();

  for (;;) {
    double slice = 0.1;
    if (draining()) {
      double remaining;
      {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        remaining = drain_deadline_.remaining_seconds();
      }
      if (remaining <= 0) entry.pending->cancel();
      if (remaining > 0) slice = std::min(slice, remaining);
    }
    if (entry.pending->wait_for(slice)) break;
  }

  const WorkerVerdict& v = entry.pending->verdict();
  const double latency_ms = ms_since(entry.admitted_at);
  admission_.release(entry.tenant);

  switch (v.kind) {
    case WorkerVerdictKind::kLine: {
      if (const std::optional<Terminal> terminal =
              classify_worker_line(v.line)) {
        const double queue_wait_ms = std::max(
            0.0, latency_ms - parse_worker_latency_ms(v.line));
        admission_.record_queue_wait_ms(queue_wait_ms);
        metrics_.on_terminal(*terminal, latency_ms, queue_wait_ms);
      } else {
        // The worker refused its payload (cannot be framing: the
        // supervisor encoded the frame itself).
        metrics_.on_reject(RejectReason::kBadRequest);
      }
      write_out(v.line);
      break;
    }
    case WorkerVerdictKind::kWorkerCrashed:
      metrics_.on_reject(RejectReason::kWorkerCrashed);
      write_out(
          reject_line(entry.id, RejectReason::kWorkerCrashed, v.detail));
      break;
    case WorkerVerdictKind::kQuarantined:
      metrics_.on_reject(RejectReason::kQuarantined);
      write_out(
          reject_line(entry.id, RejectReason::kQuarantined, v.detail));
      break;
    case WorkerVerdictKind::kCancelled:
      metrics_.on_terminal(Terminal::kCancelled, latency_ms, 0.0);
      write_out("LERA_CANCELLED " + entry.id + " " +
                sanitize_detail(v.detail.empty() ? "request withdrawn"
                                                 : v.detail) +
                "\n");
      break;
  }
}

void Server::serve(ByteStream& stream) {
  Conn conn(stream);
  std::thread writer([this, &conn] { writer_loop(conn); });

  FrameDecoder decoder(options_.framing);
  char buffer[4096];
  for (;;) {
    if (draining()) {
      // Past the drain grace the peer may never send EOF; cut the
      // read loop so serve() can complete the drain.
      std::lock_guard<std::mutex> lock(drain_mutex_);
      if (!drain_deadline_.unlimited() && drain_deadline_.expired()) {
        break;
      }
    }
    const std::ptrdiff_t n = stream.read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    for (FrameEvent& event :
         decoder.feed({buffer, static_cast<std::size_t>(n)})) {
      handle_event(conn, std::move(event));
    }
  }
  // A stream that ended mid-frame still gets a typed verdict.
  if (std::optional<FrameEvent> truncated = decoder.finish()) {
    handle_event(conn, std::move(*truncated));
  }

  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_all();
  writer.join();

  if (draining() && options_.emit_metrics_on_drain) {
    const MetricsSnapshot s = metrics_.snapshot();
    std::ostringstream os;
    os << "LERA_DRAIN - state=complete served=" << s.served
       << " degraded=" << s.degraded << " infeasible=" << s.infeasible
       << " timed_out=" << s.timed_out << " cancelled=" << s.cancelled
       << " rejected=" << s.rejected_total << "\n";
    metrics_.emit_metric_lines(os);
    if (supervisor_) emit_supervisor_metric_lines(os);
    stream.write(os.str());
  }
}

void Server::emit_supervisor_metric_lines(std::ostream& os) const {
  const SupervisorStats w = supervisor_->stats();
  os << "LERA_METRIC server_workers_alive " << w.workers_alive << "\n"
     << "LERA_METRIC server_workers_spawned " << w.spawned << "\n"
     << "LERA_METRIC server_worker_crashes " << w.crashes << "\n"
     << "LERA_METRIC server_worker_restarts " << w.restarts << "\n"
     << "LERA_METRIC server_worker_hung_kills " << w.hung_kills << "\n"
     << "LERA_METRIC server_quarantined_fingerprints "
     << w.quarantined_fingerprints << "\n"
     << "LERA_METRIC server_quarantine_rejects " << w.quarantine_rejects
     << "\n"
     << "LERA_METRIC server_crash_corpus_files " << w.corpus_files
     << "\n";
}

std::string Server::metrics_json() const {
  std::string json = metrics_.json();
  if (supervisor_) {
    const SupervisorStats w = supervisor_->stats();
    std::ostringstream os;
    os << ",\"workers\":{\"configured\":" << options_.isolation.workers
       << ",\"alive\":" << w.workers_alive << ",\"spawned\":" << w.spawned
       << ",\"crashes\":" << w.crashes << ",\"restarts\":" << w.restarts
       << ",\"hung_kills\":" << w.hung_kills
       << ",\"quarantined_fingerprints\":" << w.quarantined_fingerprints
       << ",\"quarantine_rejects\":" << w.quarantine_rejects
       << ",\"crash_corpus_files\":" << w.corpus_files << "}";
    json.insert(json.size() - 1, os.str());
  }
  return json;
}

}  // namespace lera::server
