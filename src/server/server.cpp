#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <functional>
#include <list>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "alloc/fingerprint.hpp"
#include "alloc/flow_graph.hpp"
#include "audit/audit.hpp"
#include "server/worker.hpp"
#include "workloads/problem_io.hpp"

namespace lera::server {

// sanitize_detail / reject_line / classify_result / format_verdict_line
// live in worker.hpp: the isolated worker loop must emit byte-identical
// response lines, so both paths share one implementation.

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Maps a worker's verdict line back to the terminal state it already
/// classified (the line was produced by format_verdict_line, so the
/// prefix vocabulary is closed). nullopt = not a terminal (the worker
/// rejected its payload).
std::optional<Terminal> classify_worker_line(const std::string& line) {
  if (line.rfind("LERA_RESULT ", 0) == 0) {
    return line.find(" status=degraded ") != std::string::npos
               ? Terminal::kDegraded
               : Terminal::kServed;
  }
  if (line.rfind("LERA_ERROR ", 0) == 0) return Terminal::kInfeasible;
  if (line.rfind("LERA_TIMEOUT ", 0) == 0) return Terminal::kTimedOut;
  if (line.rfind("LERA_CANCELLED ", 0) == 0) return Terminal::kCancelled;
  return std::nullopt;
}

/// Pulls the worker-side solve latency out of a LERA_RESULT line so the
/// parent can split its own end-to-end latency into queue wait vs solve
/// time, mirroring the in-process wall-seconds split. 0 when absent.
double parse_worker_latency_ms(const std::string& line) {
  const std::size_t pos = line.find(" latency_ms=");
  if (pos == std::string::npos) return 0;
  return std::strtod(line.c_str() + pos + 12, nullptr);
}

/// Rebuilds the per-segment placement from a LERA_RESULT line's
/// assign= echo ("r0,mem,r1,..."). nullopt when the echo is absent,
/// malformed, or does not cover exactly \p num_segments segments —
/// worker-mode cache inserts are best-effort, never guesses.
std::optional<alloc::Assignment> parse_assignment_echo(
    const std::string& line, std::size_t num_segments) {
  const std::size_t pos = line.find(" assign=");
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + 8;
  alloc::Assignment a(num_segments);
  std::size_t seg = 0;
  while (i < line.size() && line[i] != ' ' && line[i] != '\n') {
    std::size_t end = line.find_first_of(", \n", i);
    if (end == std::string::npos) end = line.size();
    const std::string token = line.substr(i, end - i);
    if (seg >= num_segments) return std::nullopt;
    if (token == "mem") {
      a.assign_memory(seg);
    } else if (token.size() > 1 && token[0] == 'r') {
      char* parsed_end = nullptr;
      const long reg = std::strtol(token.c_str() + 1, &parsed_end, 10);
      if (parsed_end == nullptr || *parsed_end != '\0' || reg < 0) {
        return std::nullopt;
      }
      a.assign_register(seg, static_cast<int>(reg));
    } else {
      return std::nullopt;
    }
    ++seg;
    i = end;
    if (i < line.size() && line[i] == ',') ++i;
  }
  if (seg != num_segments) return std::nullopt;
  return a;
}

}  // namespace

/// One queued response slot, produced by the reader and consumed by
/// the writer in frame order.
struct Server::ConnEntry {
  /// Ready-made response (rejections, control verbs).
  std::string ready_text;
  /// Pending solve: one single-ticket session per request, so each
  /// request carries its own cancel token chained under the engine's
  /// shutdown token.
  std::optional<engine::Session> session;
  std::size_t ticket = 0;
  /// Pending isolated solve (supervisor.hpp); set instead of session
  /// when the server runs with worker isolation enabled.
  std::shared_ptr<PendingSolve> pending;
  std::string id;
  std::string tenant;
  Clock::time_point admitted_at{};
  /// Cache-enabled mode only: the request's canonical fingerprint (the
  /// insert key once the solve finishes) and — in isolated mode — the
  /// parsed problem the worker-line reconstruction re-validates against.
  std::optional<alloc::FingerprintResult> fingerprint;
  std::shared_ptr<alloc::AllocationProblem> cache_problem;
};

/// Tier-0 exact-text cache front: raw payload bytes -> the certified
/// result already served for those exact bytes. Entries only come from
/// canonical-cache hits, so everything in here has already passed the
/// AllocCache certification gate; the stored payload is memcmp-verified
/// on every hit, so a 64-bit key collision costs one parse, never a
/// wrong answer. LRU-bounded by the same entry cap as the canonical
/// cache. Thread-safe (one reader thread per connection).
struct Server::TextFront {
  struct Entry {
    std::string payload;
    alloc::AllocationResult result;
    std::list<std::uint64_t>::iterator lru_it;
  };

  explicit TextFront(std::size_t cap, std::uint32_t audit_every)
      : max_entries(cap), audit_rate(audit_every) {}

  std::size_t max_entries;
  /// Every Nth text hit is refused here so the request takes the
  /// parse + canonical path, where AllocCache's sampled re-audit can
  /// see it. 0 = never fall through.
  std::uint32_t audit_rate;
  mutable std::mutex mutex;
  std::uint64_t hit_seq = 0;
  std::int64_t hits = 0;
  std::list<std::uint64_t> lru;  ///< Most-recent key at the front.
  std::unordered_map<std::uint64_t, Entry> map;

  static std::uint64_t key_of(const std::string& payload) {
    return std::hash<std::string>{}(payload);
  }

  std::optional<alloc::AllocationResult> lookup(const std::string& payload) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto it = map.find(key_of(payload));
    if (it == map.end() || it->second.payload != payload) return std::nullopt;
    if (audit_rate > 0 && ++hit_seq % audit_rate == 0) return std::nullopt;
    ++hits;
    lru.splice(lru.begin(), lru, it->second.lru_it);
    return it->second.result;
  }

  void store(const std::string& payload, const alloc::AllocationResult& r) {
    std::lock_guard<std::mutex> lock(mutex);
    const std::uint64_t key = key_of(payload);
    const auto it = map.find(key);
    if (it != map.end()) {
      // Same key: refresh (covers both an exact repeat racing its own
      // insert and a hash collision, where last-writer wins — the
      // payload check in lookup keeps either case correct).
      it->second.payload = payload;
      it->second.result = r;
      lru.splice(lru.begin(), lru, it->second.lru_it);
      return;
    }
    while (map.size() >= max_entries && !lru.empty()) {
      map.erase(lru.back());
      lru.pop_back();
    }
    lru.push_front(key);
    map.emplace(key, Entry{payload, r, lru.begin()});
  }

  std::int64_t entries() const {
    std::lock_guard<std::mutex> lock(mutex);
    return static_cast<std::int64_t>(map.size());
  }
  std::int64_t hit_count() const {
    std::lock_guard<std::mutex> lock(mutex);
    return hits;
  }
};

/// Per-connection state shared by the reader (serve's caller thread)
/// and the writer thread. Entries flow reader -> writer in frame
/// order; responses are written strictly in that order, so pipe-mode
/// output is deterministic.
struct Server::Conn {
  explicit Conn(ByteStream& s) : stream(s) {}

  ByteStream& stream;
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<ConnEntry> queue;
  bool reader_done = false;
  /// Writer-only: a response write failed; the peer is gone. Remaining
  /// solves are cancelled and accounted, never silently dropped.
  bool client_gone = false;
};

Server::Server(ServerOptions options) : options_(std::move(options)),
      admission_(options_.admission),
      metrics_(options_.metrics) {
  // Anytime answers under load: a deadline-hit flow solve must degrade
  // to the two-phase baseline (flagged), not stall or die.
  options_.engine.alloc.fallback_to_baseline = true;
  // The server owns the allocation cache (so hits can bypass admission
  // entirely); the engine's own cache knobs are zeroed to keep a single
  // cache and a single set of counters. Workers inherit the zeroed
  // knobs below — caching happens in the parent only.
  const engine::AllocCacheOptions cache_opts{
      options_.engine.cache_entries, options_.engine.cache_bytes,
      options_.engine.cache_audit_rate};
  options_.engine.cache_entries = 0;
  engine_ = std::make_unique<engine::Engine>(options_.engine);
  if (cache_opts.max_entries > 0) {
    cache_ = std::make_unique<engine::AllocCache>(
        cache_opts, engine_->memory_budget().child(0));
    text_front_ = std::make_unique<TextFront>(cache_opts.max_entries,
                                              cache_opts.audit_rate);
    metrics_.set_cache_enabled(true);
  }
  if (options_.isolation.workers > 0) {
    // Workers inherit the server's engine configuration and response
    // shape; the supervisor forces per-worker sequential solving.
    options_.isolation.worker.engine = options_.engine;
    options_.isolation.worker.echo_assignment = options_.echo_assignment;
    supervisor_ = std::make_unique<Supervisor>(options_.isolation);
  }
}

Server::~Server() {
  // ~Engine fires the shutdown token and drains the pool; any Session
  // still queued winds down to a terminal (cancelled) state first.
  engine_.reset();
}

std::string Server::next_auto_id() {
  return "#" + std::to_string(
                   auto_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void Server::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (drain_deadline_.unlimited()) {
      drain_deadline_ =
          netflow::Deadline::after(options_.drain_grace_seconds);
    }
  }
  admission_.begin_drain();
  if (supervisor_) {
    supervisor_->begin_drain(options_.drain_grace_seconds);
  }
  draining_.store(true, std::memory_order_release);
}

HealthStatus Server::health() const {
  const MetricsSnapshot s = metrics_.snapshot();
  HealthStatus h;
  h.overloaded = s.watchdog_tripped;
  h.draining = draining();
  h.in_flight = admission_.in_flight();
  h.estimated_queue_wait_ms = admission_.estimated_queue_wait_ms();
  h.queue_p95_ms = s.queue_wait.p95_ms;
  h.shed_total = s.rejected_total;
  const netflow::MemoryBudget budget = engine_->memory_budget();
  h.memory_bytes_in_use = budget.used();
  h.memory_peak_bytes = budget.peak();
  h.memory_cap_bytes = options_.engine.max_bytes_total;
  if (supervisor_) {
    const SupervisorStats w = supervisor_->stats();
    h.isolation_enabled = true;
    h.workers_alive = w.workers_alive;
    h.worker_crashes = w.crashes;
    h.worker_restarts = w.restarts;
    h.quarantined_fingerprints = w.quarantined_fingerprints;
  }
  if (cache_ != nullptr) {
    const engine::AllocCacheStats cs = cache_->stats();
    h.cache_enabled = true;
    h.cache_entries = cs.entries;
    h.cache_hits = cs.hits;
    h.cache_bytes = cs.bytes_in_use;
  }
  return h;
}

void Server::handle_solve(Conn& conn, Frame frame, const std::string& id) {
  const std::string tenant =
      frame.tenant.empty() ? std::string("default") : frame.tenant;
  ConnEntry entry;
  entry.id = id;

  // Cache consult before admission: an exact (or permuted-equivalent)
  // repeat of a cached instance is answered right here — no queue slot,
  // no worker dispatch, no solve — and booked under its own terminal
  // (cache_hit) so the accounting identity still covers it. Cache-off
  // servers never reach this block: their admission order, rejections
  // and output bytes are exactly the pre-cache server's.
  std::optional<workloads::ProblemParseResult> pre_parsed;
  std::optional<alloc::FingerprintResult> fp;
  bool served_from_cache = false;
  if (cache_ != nullptr && !draining()) {
    const Clock::time_point started = Clock::now();
    const bool static_model = options_.engine.params.register_model ==
                              energy::RegisterModel::kStatic;
    // Tier 0: a byte-identical repeat of something the cache already
    // served needs no parse and no fingerprint — hash + memcmp + format
    // is the whole hit path. (lookup() refuses every audit_rate-th hit
    // so the paranoia recheck below still samples this traffic.)
    if (std::optional<alloc::AllocationResult> text_hit =
            text_front_->lookup(frame.payload)) {
      const double latency_ms = ms_since(started);
      metrics_.on_terminal(Terminal::kCacheHit, latency_ms, 0.0);
      entry.ready_text =
          format_verdict_line(id, *text_hit, Terminal::kCacheHit,
                              latency_ms, options_.echo_assignment,
                              static_model);
      served_from_cache = true;
    } else {
      pre_parsed.emplace(
          workloads::parse_problem(frame.payload, options_.engine.params));
      if (pre_parsed->ok()) {
        fp = alloc::fingerprint_problem(*pre_parsed->problem);
        if (std::optional<alloc::AllocationResult> hit =
                cache_->lookup(*pre_parsed->problem, *fp)) {
          const double latency_ms = ms_since(started);
          metrics_.on_terminal(Terminal::kCacheHit, latency_ms, 0.0);
          entry.ready_text = format_verdict_line(
              id, *hit, Terminal::kCacheHit, latency_ms,
              options_.echo_assignment, static_model);
          served_from_cache = true;
          // The remapped result is exactly this payload's answer:
          // promote it so the next byte-identical repeat takes tier 0.
          text_front_->store(frame.payload, *hit);
        }
      }
    }
  }

  // Admission first — overload is shed before the payload is parsed,
  // let alone solved. (With the cache on, a miss re-uses the parse from
  // the consult above; the admission decision itself is unchanged.)
  const AdmissionVerdict verdict =
      served_from_cache
          ? AdmissionVerdict{}
          : admission_.try_admit(tenant,
                                 static_cast<double>(frame.deadline_ms));
  if (served_from_cache) {
    // Response already formatted; skip admission and solving entirely.
  } else if (!verdict.admitted) {
    metrics_.on_reject(verdict.reason);
    entry.ready_text = reject_line(id, verdict.reason, verdict.detail);
  } else {
    const workloads::ProblemParseResult parsed =
        pre_parsed.has_value()
            ? std::move(*pre_parsed)
            : workloads::parse_problem(frame.payload,
                                       options_.engine.params);
    if (!parsed.ok()) {
      // The parser's diagnostic maps to a typed bad_request rejection;
      // the connection (and the process) live on.
      admission_.release(tenant);
      metrics_.on_reject(RejectReason::kBadRequest);
      entry.ready_text =
          reject_line(id, RejectReason::kBadRequest, parsed.error);
    } else {
      // Footprint-based admission: a request whose predicted solve
      // footprint exceeds the configured memory cap would only be
      // refused by the budget (or degraded) after burning a queue
      // slot, so shed it now with a typed reason instead.
      std::int64_t cap = options_.engine.max_bytes_per_solve;
      const std::int64_t total = options_.engine.max_bytes_total;
      if (total > 0 && (cap == 0 || total < cap)) cap = total;
      const std::int64_t predicted =
          cap > 0 ? alloc::estimate_problem_footprint(*parsed.problem)
                  : 0;
      if (cap > 0 && predicted > cap) {
        admission_.release(tenant);
        metrics_.on_reject(RejectReason::kMemoryInfeasible);
        entry.ready_text = reject_line(
            id, RejectReason::kMemoryInfeasible,
            "predicted solve footprint of " + std::to_string(predicted) +
                " bytes exceeds the " + std::to_string(cap) +
                "-byte memory cap");
      } else if (supervisor_) {
        // Isolated mode: ship the already-vetted payload to the worker
        // pool. Parsing it here first is load-bearing — it guarantees
        // any crash-corpus reproducer the supervisor writes is
        // loadable, and keeps admission semantics identical.
        entry.tenant = tenant;
        entry.admitted_at = Clock::now();
        entry.fingerprint = fp;
        if (fp.has_value()) {
          // The worker answers with a text line; the insert path
          // re-validates its echoed assignment against this problem.
          entry.cache_problem = std::make_shared<alloc::AllocationProblem>(
              std::move(*parsed.problem));
        }
        entry.pending =
            supervisor_->dispatch(id, frame.payload, frame.deadline_ms);
      } else {
        entry.session.emplace(engine_->open_session());
        entry.tenant = tenant;
        entry.admitted_at = Clock::now();
        entry.fingerprint = fp;
        entry.ticket = entry.session->submit(
            std::move(*parsed.problem),
            frame.deadline_ms > 0 ? frame.deadline_ms / 1000.0 : 0.0);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.queue.push_back(std::move(entry));
  }
  conn.cv.notify_all();
}

void Server::handle_event(Conn& conn, FrameEvent event) {
  metrics_.on_frame();
  std::string ready;
  if (!event.ok) {
    const RejectReason reason = event.error == FrameError::kFrameTooLarge
                                    ? RejectReason::kFrameTooLarge
                                    : RejectReason::kBadFrame;
    metrics_.on_reject(reason);
    const std::string id =
        event.id.empty() ? next_auto_id() : event.id;
    ready = reject_line(id, reason, event.detail);
  } else {
    Frame& frame = event.frame;
    const std::string id =
        frame.id.empty() ? next_auto_id() : frame.id;
    switch (frame.verb) {
      case FrameVerb::kSolve:
        metrics_.on_solve_request();
        handle_solve(conn, std::move(frame), id);
        return;
      case FrameVerb::kHealth: {
        const HealthStatus h = health();
        std::ostringstream os;
        os << "LERA_HEALTH " << id << " status=" << h.status_word()
           << " in_flight=" << h.in_flight << " est_queue_wait_ms="
           << h.estimated_queue_wait_ms << " queue_p95_ms="
           << h.queue_p95_ms << " shed=" << h.shed_total
           << " mem_bytes=" << h.memory_bytes_in_use
           << " mem_peak_bytes=" << h.memory_peak_bytes
           << " mem_cap_bytes=" << h.memory_cap_bytes;
        if (h.isolation_enabled) {
          // Gated on isolation so default-mode HEALTH output stays
          // byte-identical to the pre-supervisor server.
          os << " workers_alive=" << h.workers_alive
             << " worker_crashes=" << h.worker_crashes
             << " worker_restarts=" << h.worker_restarts
             << " quarantined=" << h.quarantined_fingerprints;
        }
        if (h.cache_enabled) {
          // Same gating as the isolation fields: cache-off HEALTH
          // output stays byte-identical to the pre-cache server.
          os << " cache_entries=" << h.cache_entries
             << " cache_hits=" << h.cache_hits
             << " cache_bytes=" << h.cache_bytes;
        }
        os << "\n";
        ready = os.str();
        break;
      }
      case FrameVerb::kStats: {
        const netflow::MemoryBudget budget = engine_->memory_budget();
        std::ostringstream os;
        metrics_.emit_metric_lines(os);
        os << "LERA_METRIC server_memory_bytes_in_use " << budget.used()
           << "\n"
           << "LERA_METRIC server_memory_peak_bytes " << budget.peak()
           << "\n"
           << "LERA_METRIC server_memory_denials " << budget.denials()
           << "\n";
        if (supervisor_) emit_supervisor_metric_lines(os);
        if (cache_ != nullptr) emit_cache_metric_lines(os);
        os << "LERA_STATS_END " << id << "\n";
        ready = os.str();
        break;
      }
      case FrameVerb::kPing:
        ready = "LERA_PONG " + id + "\n";
        break;
      case FrameVerb::kDrain:
        begin_drain();
        ready = "LERA_DRAIN " + id + " state=started grace_s=" +
                std::to_string(options_.drain_grace_seconds) + "\n";
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    ConnEntry entry;
    entry.ready_text = std::move(ready);
    conn.queue.push_back(std::move(entry));
  }
  conn.cv.notify_all();
}

void Server::writer_loop(Conn& conn) {
  const auto write_out = [&](const std::string& text) {
    if (conn.client_gone || text.empty()) return;
    if (!conn.stream.write(text)) conn.client_gone = true;
  };

  for (;;) {
    ConnEntry entry;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock, [&] {
        return !conn.queue.empty() || conn.reader_done;
      });
      if (conn.queue.empty()) break;  // reader_done and drained
      entry = std::move(conn.queue.front());
      conn.queue.pop_front();
    }

    if (entry.pending) {
      finish_isolated(conn, entry);
      continue;
    }

    if (!entry.session.has_value()) {
      write_out(entry.ready_text);
      continue;
    }

    // A peer that vanished is not worth solving for: withdraw, but
    // still wait for the terminal state so the request is accounted.
    if (conn.client_gone) entry.session->cancel(entry.ticket);

    // Wait for the result in bounded slices so an engine-wide drain
    // can step in: past the drain grace, the solve is cancelled and
    // result() blocks only until its fast-exit terminal state.
    for (;;) {
      double slice = 0.1;
      if (draining()) {
        double remaining;
        {
          std::lock_guard<std::mutex> lock(drain_mutex_);
          remaining = drain_deadline_.remaining_seconds();
        }
        if (remaining <= 0) {
          entry.session->cancel(entry.ticket);
          entry.session->result(entry.ticket);
          break;
        }
        slice = std::min(slice, remaining);
      }
      if (entry.session->wait_for(entry.ticket, slice)) break;
    }

    const alloc::AllocationResult& r =
        entry.session->result(entry.ticket);
    const double latency_ms = ms_since(entry.admitted_at);
    const double queue_wait_ms = std::max(
        0.0, latency_ms - r.solve_diagnostics.wall_seconds * 1000.0);
    const Terminal terminal = classify_result(r);

    admission_.release(entry.tenant);
    admission_.record_queue_wait_ms(queue_wait_ms);
    metrics_.on_terminal(terminal, latency_ms, queue_wait_ms);

    // Offer the finished solve to the cache; insert() itself refuses
    // anything that is not a certified, audit-clean served result.
    if (cache_ != nullptr && entry.fingerprint.has_value()) {
      cache_->insert(*entry.fingerprint, r);
    }

    write_out(format_verdict_line(
        entry.id, r, terminal, latency_ms, options_.echo_assignment,
        options_.engine.params.register_model ==
            energy::RegisterModel::kStatic));
  }
}

/// Resolves one isolated (supervisor-dispatched) request: waits for its
/// verdict under the same drain discipline the in-process path uses,
/// books exactly one terminal or rejection, and relays or synthesizes
/// the response line.
void Server::finish_isolated(Conn& conn, ConnEntry& entry) {
  const auto write_out = [&](const std::string& text) {
    if (conn.client_gone || text.empty()) return;
    if (!conn.stream.write(text)) conn.client_gone = true;
  };

  // A peer that vanished is not worth solving for: withdraw, but still
  // wait for the verdict so the request is accounted.
  if (conn.client_gone) entry.pending->cancel();

  for (;;) {
    double slice = 0.1;
    if (draining()) {
      double remaining;
      {
        std::lock_guard<std::mutex> lock(drain_mutex_);
        remaining = drain_deadline_.remaining_seconds();
      }
      if (remaining <= 0) entry.pending->cancel();
      if (remaining > 0) slice = std::min(slice, remaining);
    }
    if (entry.pending->wait_for(slice)) break;
  }

  const WorkerVerdict& v = entry.pending->verdict();
  const double latency_ms = ms_since(entry.admitted_at);
  admission_.release(entry.tenant);

  switch (v.kind) {
    case WorkerVerdictKind::kLine: {
      if (const std::optional<Terminal> terminal =
              classify_worker_line(v.line)) {
        const double queue_wait_ms = std::max(
            0.0, latency_ms - parse_worker_latency_ms(v.line));
        admission_.record_queue_wait_ms(queue_wait_ms);
        metrics_.on_terminal(*terminal, latency_ms, queue_wait_ms);
        if (*terminal == Terminal::kServed) {
          maybe_cache_worker_result(entry, v.line);
        }
      } else {
        // The worker refused its payload (cannot be framing: the
        // supervisor encoded the frame itself).
        metrics_.on_reject(RejectReason::kBadRequest);
      }
      write_out(v.line);
      break;
    }
    case WorkerVerdictKind::kWorkerCrashed:
      metrics_.on_reject(RejectReason::kWorkerCrashed);
      write_out(
          reject_line(entry.id, RejectReason::kWorkerCrashed, v.detail));
      break;
    case WorkerVerdictKind::kQuarantined:
      metrics_.on_reject(RejectReason::kQuarantined);
      write_out(
          reject_line(entry.id, RejectReason::kQuarantined, v.detail));
      break;
    case WorkerVerdictKind::kCancelled:
      metrics_.on_terminal(Terminal::kCancelled, latency_ms, 0.0);
      write_out("LERA_CANCELLED " + entry.id + " " +
                sanitize_detail(v.detail.empty() ? "request withdrawn"
                                                 : v.detail) +
                "\n");
      break;
  }
}

/// Worker-mode cache insert: the worker answered with a text line, not
/// an AllocationResult, so the parent reconstructs one from the echoed
/// assignment and re-derives every cached claim from first principles —
/// validate_assignment for legality, a full-cost audit for the energy
/// accounting, finish_result for the stats the hit line will report.
/// Anything that does not re-derive cleanly is simply not cached; a
/// worker line is never trusted into the cache on its own word.
void Server::maybe_cache_worker_result(const ConnEntry& entry,
                                       const std::string& line) {
  if (cache_ == nullptr || !entry.fingerprint.has_value() ||
      entry.cache_problem == nullptr) {
    return;
  }
  // Only clean, in-time, optimal-path answers qualify (mirrors
  // AllocCache::cacheable on the in-process side).
  if (line.find(" status=ok ") == std::string::npos ||
      line.find(" timed_out=0") == std::string::npos) {
    return;
  }
  const alloc::AllocationProblem& p = *entry.cache_problem;
  const std::optional<alloc::Assignment> a =
      parse_assignment_echo(line, p.segments.size());
  if (!a.has_value()) return;  // echo_assignment off, or malformed.
  if (!alloc::validate_assignment(p, *a).empty()) return;
  alloc::AllocationResult r;
  r.assignment = *a;
  r.feasible = true;
  alloc::finish_result(p, r);
  audit::AuditOptions aopts;
  aopts.level = audit::AuditLevel::kFullCost;
  aopts.check_optimality = false;
  if (!audit::audit_allocation(p, r.assignment, aopts).clean()) return;
  // The worker's ok verdict means its robust solve passed the
  // configured certification (an uncertified answer classifies as an
  // error line, never ok); combined with the local re-derivation above
  // this meets the cache's entry contract.
  r.solve_diagnostics.certification =
      netflow::CertificationVerdict::kPassed;
  r.solve_diagnostics.message = "reconstructed from worker verdict";
  cache_->insert(*entry.fingerprint, r);
}

void Server::serve(ByteStream& stream) {
  Conn conn(stream);
  std::thread writer([this, &conn] { writer_loop(conn); });

  FrameDecoder decoder(options_.framing);
  char buffer[4096];
  for (;;) {
    if (draining()) {
      // Past the drain grace the peer may never send EOF; cut the
      // read loop so serve() can complete the drain.
      std::lock_guard<std::mutex> lock(drain_mutex_);
      if (!drain_deadline_.unlimited() && drain_deadline_.expired()) {
        break;
      }
    }
    const std::ptrdiff_t n = stream.read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    for (FrameEvent& event :
         decoder.feed({buffer, static_cast<std::size_t>(n)})) {
      handle_event(conn, std::move(event));
    }
  }
  // A stream that ended mid-frame still gets a typed verdict.
  if (std::optional<FrameEvent> truncated = decoder.finish()) {
    handle_event(conn, std::move(*truncated));
  }

  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_all();
  writer.join();

  if (draining() && options_.emit_metrics_on_drain) {
    const MetricsSnapshot s = metrics_.snapshot();
    std::ostringstream os;
    os << "LERA_DRAIN - state=complete served=" << s.served
       << " degraded=" << s.degraded << " infeasible=" << s.infeasible
       << " timed_out=" << s.timed_out << " cancelled=" << s.cancelled
       << " rejected=" << s.rejected_total;
    if (cache_ != nullptr) os << " cache_hits=" << s.cache_hits;
    os << "\n";
    metrics_.emit_metric_lines(os);
    if (supervisor_) emit_supervisor_metric_lines(os);
    if (cache_ != nullptr) emit_cache_metric_lines(os);
    stream.write(os.str());
  }
}

void Server::emit_supervisor_metric_lines(std::ostream& os) const {
  const SupervisorStats w = supervisor_->stats();
  os << "LERA_METRIC server_workers_alive " << w.workers_alive << "\n"
     << "LERA_METRIC server_workers_spawned " << w.spawned << "\n"
     << "LERA_METRIC server_worker_crashes " << w.crashes << "\n"
     << "LERA_METRIC server_worker_restarts " << w.restarts << "\n"
     << "LERA_METRIC server_worker_hung_kills " << w.hung_kills << "\n"
     << "LERA_METRIC server_quarantined_fingerprints "
     << w.quarantined_fingerprints << "\n"
     << "LERA_METRIC server_quarantine_rejects " << w.quarantine_rejects
     << "\n"
     << "LERA_METRIC server_crash_corpus_files " << w.corpus_files
     << "\n";
}

void Server::emit_cache_metric_lines(std::ostream& os) const {
  const engine::AllocCacheStats cs = cache_->stats();
  os << "LERA_METRIC server_cache_entries " << cs.entries << "\n"
     << "LERA_METRIC server_cache_misses " << cs.misses << "\n"
     << "LERA_METRIC server_cache_insertions " << cs.insertions << "\n"
     << "LERA_METRIC server_cache_evictions " << cs.evictions << "\n"
     << "LERA_METRIC server_cache_audit_samples " << cs.audit_samples
     << "\n"
     << "LERA_METRIC server_cache_audit_evictions " << cs.audit_evictions
     << "\n"
     << "LERA_METRIC server_cache_bytes " << cs.bytes_in_use << "\n"
     << "LERA_METRIC server_cache_text_hits " << text_front_->hit_count()
     << "\n"
     << "LERA_METRIC server_cache_text_entries " << text_front_->entries()
     << "\n";
}

std::string Server::metrics_json() const {
  std::string json = metrics_.json();
  if (supervisor_) {
    const SupervisorStats w = supervisor_->stats();
    std::ostringstream os;
    os << ",\"workers\":{\"configured\":" << options_.isolation.workers
       << ",\"alive\":" << w.workers_alive << ",\"spawned\":" << w.spawned
       << ",\"crashes\":" << w.crashes << ",\"restarts\":" << w.restarts
       << ",\"hung_kills\":" << w.hung_kills
       << ",\"quarantined_fingerprints\":" << w.quarantined_fingerprints
       << ",\"quarantine_rejects\":" << w.quarantine_rejects
       << ",\"crash_corpus_files\":" << w.corpus_files << "}";
    json.insert(json.size() - 1, os.str());
  }
  if (cache_ != nullptr) {
    const engine::AllocCacheStats cs = cache_->stats();
    std::ostringstream os;
    os << ",\"cache\":{\"entries\":" << cs.entries
       << ",\"hits\":" << cs.hits << ",\"misses\":" << cs.misses
       << ",\"insertions\":" << cs.insertions
       << ",\"evictions\":" << cs.evictions
       << ",\"audit_samples\":" << cs.audit_samples
       << ",\"audit_evictions\":" << cs.audit_evictions
       << ",\"bytes\":" << cs.bytes_in_use
       << ",\"text_hits\":" << text_front_->hit_count()
       << ",\"text_entries\":" << text_front_->entries() << "}";
    json.insert(json.size() - 1, os.str());
  }
  return json;
}

}  // namespace lera::server
