#include "server/server.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <optional>
#include <sstream>
#include <thread>

#include "alloc/flow_graph.hpp"
#include "workloads/problem_io.hpp"

namespace lera::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

/// Diagnostics travel inside single response lines, so newlines must
/// not let them forge protocol structure.
std::string sanitize(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ';';
  }
  return text;
}

std::string reject_line(const std::string& id, RejectReason reason,
                        const std::string& detail) {
  std::string line = "LERA_REJECT " + id + " reason=" + to_string(reason);
  if (!detail.empty()) line += " detail=" + sanitize(detail);
  line += "\n";
  return line;
}

/// The disjoint terminal state of one finished solve (metrics.hpp).
Terminal classify(const alloc::AllocationResult& r) {
  if (r.cancelled) return Terminal::kCancelled;
  if (!r.feasible && r.timed_out) return Terminal::kTimedOut;
  if (!r.feasible) return Terminal::kInfeasible;
  if (r.degraded) return Terminal::kDegraded;
  return Terminal::kServed;
}

}  // namespace

/// Per-connection state shared by the reader (serve's caller thread)
/// and the writer thread. Entries flow reader -> writer in frame
/// order; responses are written strictly in that order, so pipe-mode
/// output is deterministic.
struct Server::Conn {
  struct Entry {
    /// Ready-made response (rejections, control verbs).
    std::string ready_text;
    /// Pending solve: one single-ticket session per request, so each
    /// request carries its own cancel token chained under the engine's
    /// shutdown token.
    std::optional<engine::Session> session;
    std::size_t ticket = 0;
    std::string id;
    std::string tenant;
    Clock::time_point admitted_at{};
  };

  explicit Conn(ByteStream& s) : stream(s) {}

  ByteStream& stream;
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<Entry> queue;
  bool reader_done = false;
  /// Writer-only: a response write failed; the peer is gone. Remaining
  /// solves are cancelled and accounted, never silently dropped.
  bool client_gone = false;
};

Server::Server(ServerOptions options) : options_(std::move(options)),
      admission_(options_.admission),
      metrics_(options_.metrics) {
  // Anytime answers under load: a deadline-hit flow solve must degrade
  // to the two-phase baseline (flagged), not stall or die.
  options_.engine.alloc.fallback_to_baseline = true;
  engine_ = std::make_unique<engine::Engine>(options_.engine);
}

Server::~Server() {
  // ~Engine fires the shutdown token and drains the pool; any Session
  // still queued winds down to a terminal (cancelled) state first.
  engine_.reset();
}

std::string Server::next_auto_id() {
  return "#" + std::to_string(
                   auto_id_.fetch_add(1, std::memory_order_relaxed) + 1);
}

void Server::begin_drain() {
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    if (drain_deadline_.unlimited()) {
      drain_deadline_ =
          netflow::Deadline::after(options_.drain_grace_seconds);
    }
  }
  admission_.begin_drain();
  draining_.store(true, std::memory_order_release);
}

HealthStatus Server::health() const {
  const MetricsSnapshot s = metrics_.snapshot();
  HealthStatus h;
  h.overloaded = s.watchdog_tripped;
  h.draining = draining();
  h.in_flight = admission_.in_flight();
  h.estimated_queue_wait_ms = admission_.estimated_queue_wait_ms();
  h.queue_p95_ms = s.queue_wait.p95_ms;
  h.shed_total = s.rejected_total;
  const netflow::MemoryBudget budget = engine_->memory_budget();
  h.memory_bytes_in_use = budget.used();
  h.memory_peak_bytes = budget.peak();
  h.memory_cap_bytes = options_.engine.max_bytes_total;
  return h;
}

void Server::handle_solve(Conn& conn, Frame frame, const std::string& id) {
  const std::string tenant =
      frame.tenant.empty() ? std::string("default") : frame.tenant;
  Conn::Entry entry;
  entry.id = id;

  // Admission first — overload is shed before the payload is parsed,
  // let alone solved.
  const AdmissionVerdict verdict = admission_.try_admit(
      tenant, static_cast<double>(frame.deadline_ms));
  if (!verdict.admitted) {
    metrics_.on_reject(verdict.reason);
    entry.ready_text = reject_line(id, verdict.reason, verdict.detail);
  } else {
    const workloads::ProblemParseResult parsed =
        workloads::parse_problem(frame.payload, options_.engine.params);
    if (!parsed.ok()) {
      // The parser's diagnostic maps to a typed bad_request rejection;
      // the connection (and the process) live on.
      admission_.release(tenant);
      metrics_.on_reject(RejectReason::kBadRequest);
      entry.ready_text =
          reject_line(id, RejectReason::kBadRequest, parsed.error);
    } else {
      // Footprint-based admission: a request whose predicted solve
      // footprint exceeds the configured memory cap would only be
      // refused by the budget (or degraded) after burning a queue
      // slot, so shed it now with a typed reason instead.
      std::int64_t cap = options_.engine.max_bytes_per_solve;
      const std::int64_t total = options_.engine.max_bytes_total;
      if (total > 0 && (cap == 0 || total < cap)) cap = total;
      const std::int64_t predicted =
          cap > 0 ? alloc::estimate_problem_footprint(*parsed.problem)
                  : 0;
      if (cap > 0 && predicted > cap) {
        admission_.release(tenant);
        metrics_.on_reject(RejectReason::kMemoryInfeasible);
        entry.ready_text = reject_line(
            id, RejectReason::kMemoryInfeasible,
            "predicted solve footprint of " + std::to_string(predicted) +
                " bytes exceeds the " + std::to_string(cap) +
                "-byte memory cap");
      } else {
        entry.session.emplace(engine_->open_session());
        entry.tenant = tenant;
        entry.admitted_at = Clock::now();
        entry.ticket = entry.session->submit(
            std::move(*parsed.problem),
            frame.deadline_ms > 0 ? frame.deadline_ms / 1000.0 : 0.0);
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.queue.push_back(std::move(entry));
  }
  conn.cv.notify_all();
}

void Server::handle_event(Conn& conn, FrameEvent event) {
  metrics_.on_frame();
  std::string ready;
  if (!event.ok) {
    const RejectReason reason = event.error == FrameError::kFrameTooLarge
                                    ? RejectReason::kFrameTooLarge
                                    : RejectReason::kBadFrame;
    metrics_.on_reject(reason);
    const std::string id =
        event.id.empty() ? next_auto_id() : event.id;
    ready = reject_line(id, reason, event.detail);
  } else {
    Frame& frame = event.frame;
    const std::string id =
        frame.id.empty() ? next_auto_id() : frame.id;
    switch (frame.verb) {
      case FrameVerb::kSolve:
        metrics_.on_solve_request();
        handle_solve(conn, std::move(frame), id);
        return;
      case FrameVerb::kHealth: {
        const HealthStatus h = health();
        std::ostringstream os;
        os << "LERA_HEALTH " << id << " status=" << h.status_word()
           << " in_flight=" << h.in_flight << " est_queue_wait_ms="
           << h.estimated_queue_wait_ms << " queue_p95_ms="
           << h.queue_p95_ms << " shed=" << h.shed_total
           << " mem_bytes=" << h.memory_bytes_in_use
           << " mem_peak_bytes=" << h.memory_peak_bytes
           << " mem_cap_bytes=" << h.memory_cap_bytes << "\n";
        ready = os.str();
        break;
      }
      case FrameVerb::kStats: {
        const netflow::MemoryBudget budget = engine_->memory_budget();
        std::ostringstream os;
        metrics_.emit_metric_lines(os);
        os << "LERA_METRIC server_memory_bytes_in_use " << budget.used()
           << "\n"
           << "LERA_METRIC server_memory_peak_bytes " << budget.peak()
           << "\n"
           << "LERA_METRIC server_memory_denials " << budget.denials()
           << "\n";
        os << "LERA_STATS_END " << id << "\n";
        ready = os.str();
        break;
      }
      case FrameVerb::kPing:
        ready = "LERA_PONG " + id + "\n";
        break;
      case FrameVerb::kDrain:
        begin_drain();
        ready = "LERA_DRAIN " + id + " state=started grace_s=" +
                std::to_string(options_.drain_grace_seconds) + "\n";
        break;
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    Conn::Entry entry;
    entry.ready_text = std::move(ready);
    conn.queue.push_back(std::move(entry));
  }
  conn.cv.notify_all();
}

void Server::writer_loop(Conn& conn) {
  const auto write_out = [&](const std::string& text) {
    if (conn.client_gone || text.empty()) return;
    if (!conn.stream.write(text)) conn.client_gone = true;
  };

  for (;;) {
    Conn::Entry entry;
    {
      std::unique_lock<std::mutex> lock(conn.mutex);
      conn.cv.wait(lock, [&] {
        return !conn.queue.empty() || conn.reader_done;
      });
      if (conn.queue.empty()) break;  // reader_done and drained
      entry = std::move(conn.queue.front());
      conn.queue.pop_front();
    }

    if (!entry.session.has_value()) {
      write_out(entry.ready_text);
      continue;
    }

    // A peer that vanished is not worth solving for: withdraw, but
    // still wait for the terminal state so the request is accounted.
    if (conn.client_gone) entry.session->cancel(entry.ticket);

    // Wait for the result in bounded slices so an engine-wide drain
    // can step in: past the drain grace, the solve is cancelled and
    // result() blocks only until its fast-exit terminal state.
    for (;;) {
      double slice = 0.1;
      if (draining()) {
        double remaining;
        {
          std::lock_guard<std::mutex> lock(drain_mutex_);
          remaining = drain_deadline_.remaining_seconds();
        }
        if (remaining <= 0) {
          entry.session->cancel(entry.ticket);
          entry.session->result(entry.ticket);
          break;
        }
        slice = std::min(slice, remaining);
      }
      if (entry.session->wait_for(entry.ticket, slice)) break;
    }

    const alloc::AllocationResult& r =
        entry.session->result(entry.ticket);
    const double latency_ms = ms_since(entry.admitted_at);
    const double queue_wait_ms = std::max(
        0.0, latency_ms - r.solve_diagnostics.wall_seconds * 1000.0);
    const Terminal terminal = classify(r);

    admission_.release(entry.tenant);
    admission_.record_queue_wait_ms(queue_wait_ms);
    metrics_.on_terminal(terminal, latency_ms, queue_wait_ms);

    std::ostringstream os;
    switch (terminal) {
      case Terminal::kServed:
      case Terminal::kDegraded: {
        const bool is_static = options_.engine.params.register_model ==
                               energy::RegisterModel::kStatic;
        const double energy = is_static ? r.static_energy.total()
                                        : r.activity_energy.total();
        os << "LERA_RESULT " << entry.id << " status="
           << (terminal == Terminal::kDegraded ? "degraded" : "ok")
           << " energy=" << energy
           << " mem_accesses=" << r.stats.mem_accesses()
           << " reg_accesses=" << r.stats.reg_accesses()
           << " mem_locations=" << r.stats.mem_locations
           << " registers_used=" << r.registers_used << " solver="
           << (r.degraded
                   ? std::string("two-phase-baseline")
                   : netflow::to_string(r.solve_diagnostics.solver_used))
           << " timed_out=" << (r.timed_out ? 1 : 0)
           << " latency_ms=" << latency_ms;
        if (options_.echo_assignment) {
          os << " assign=";
          if (r.assignment.size() == 0) {
            os << "-";
          } else {
            for (std::size_t s = 0; s < r.assignment.size(); ++s) {
              if (s > 0) os << ",";
              if (r.assignment.in_register(s)) {
                os << "r" << r.assignment.location(s);
              } else {
                os << "mem";
              }
            }
          }
        }
        os << "\n";
        break;
      }
      case Terminal::kInfeasible:
        os << "LERA_ERROR " << entry.id << " "
           << sanitize(r.message.empty() ? "allocation infeasible"
                                         : r.message)
           << "\n";
        break;
      case Terminal::kTimedOut:
        os << "LERA_TIMEOUT " << entry.id << " "
           << sanitize(r.message.empty()
                           ? "deadline expired with no usable answer"
                           : r.message)
           << "\n";
        break;
      case Terminal::kCancelled:
        os << "LERA_CANCELLED " << entry.id << " "
           << sanitize(r.message.empty() ? "request withdrawn"
                                         : r.message)
           << "\n";
        break;
    }
    write_out(os.str());
  }
}

void Server::serve(ByteStream& stream) {
  Conn conn(stream);
  std::thread writer([this, &conn] { writer_loop(conn); });

  FrameDecoder decoder(options_.framing);
  char buffer[4096];
  for (;;) {
    if (draining()) {
      // Past the drain grace the peer may never send EOF; cut the
      // read loop so serve() can complete the drain.
      std::lock_guard<std::mutex> lock(drain_mutex_);
      if (!drain_deadline_.unlimited() && drain_deadline_.expired()) {
        break;
      }
    }
    const std::ptrdiff_t n = stream.read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;
    for (FrameEvent& event :
         decoder.feed({buffer, static_cast<std::size_t>(n)})) {
      handle_event(conn, std::move(event));
    }
  }
  // A stream that ended mid-frame still gets a typed verdict.
  if (std::optional<FrameEvent> truncated = decoder.finish()) {
    handle_event(conn, std::move(*truncated));
  }

  {
    std::lock_guard<std::mutex> lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_all();
  writer.join();

  if (draining() && options_.emit_metrics_on_drain) {
    const MetricsSnapshot s = metrics_.snapshot();
    std::ostringstream os;
    os << "LERA_DRAIN - state=complete served=" << s.served
       << " degraded=" << s.degraded << " infeasible=" << s.infeasible
       << " timed_out=" << s.timed_out << " cancelled=" << s.cancelled
       << " rejected=" << s.rejected_total << "\n";
    metrics_.emit_metric_lines(os);
    stream.write(os.str());
  }
}

}  // namespace lera::server
