#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

#include "server/admission.hpp"

/// \file metrics.hpp
/// Request accounting and latency tracking for the allocation server.
/// Every SOLVE request ends in exactly ONE terminal state — that
/// disjointness is the accounting contract the chaos harness asserts:
/// requests == served + degraded + infeasible + timed_out + cancelled
/// + rejected. Latencies feed fixed-size rolling windows (recent
/// traffic, not lifetime averages), and the queue-wait window drives
/// the overload watchdog: when the rolling p95 queue wait exceeds the
/// configured budget the watchdog trips (health reports `overloaded`),
/// recovering with hysteresis at half the budget so it does not
/// flap.

namespace lera::server {

/// Disjoint terminal states of one admitted SOLVE request.
enum class Terminal {
  kServed,      ///< Feasible optimal answer.
  kDegraded,    ///< Feasible answer via the two-phase baseline.
  kInfeasible,  ///< Valid problem, no allocation exists (LERA_ERROR).
  kTimedOut,    ///< Deadline expired with no usable answer.
  kCancelled,   ///< Withdrawn (disconnect, drain, engine shutdown).
  kCacheHit,    ///< Served from the allocation cache, before admission
                ///< (no queue slot, no solve). Cache-enabled mode only.
};

std::string to_string(Terminal t);

struct LatencySummary {
  std::int64_t count = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
};

/// Fixed-capacity rolling window of latency samples; thread-safe.
class LatencyWindow {
 public:
  explicit LatencyWindow(std::size_t capacity = 512);

  void record(double ms);
  LatencySummary summary() const;
  /// The p-quantile over the current window (p in [0,1]); 0 when empty.
  double quantile(double p) const;
  std::int64_t count() const;

 private:
  mutable std::mutex mutex_;
  std::vector<double> ring_;
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::int64_t total_ = 0;
  double max_ms_ = 0;
};

struct MetricsSnapshot {
  std::int64_t frames_received = 0;
  std::int64_t solve_requests = 0;
  std::int64_t served = 0;
  std::int64_t degraded = 0;
  std::int64_t infeasible = 0;
  std::int64_t timed_out = 0;
  std::int64_t cancelled = 0;
  std::array<std::int64_t, kNumRejectReasons> rejected_by_reason{};
  std::int64_t rejected_total = 0;
  /// Requests served from the allocation cache (Terminal::kCacheHit);
  /// 0 unless the cache is enabled. Part of the accounting identity: a
  /// hit consumed one SOLVE request without taking a queue slot.
  std::int64_t cache_hits = 0;
  LatencySummary latency;     ///< Admission -> result available.
  LatencySummary queue_wait;  ///< Latency minus solve wall time.
  /// Cache-hit serve time (parse + lookup + remap); kept out of
  /// `latency` so hit/miss percentiles stay separately readable.
  LatencySummary cache_hit_latency;
  bool watchdog_tripped = false;
  double watchdog_budget_ms = 0;

  /// Terminal states summed — the chaos harness asserts this equals
  /// solve_requests plus the non-solve rejects' share (see
  /// accounted_requests()).
  std::int64_t terminals() const {
    return served + degraded + infeasible + timed_out + cancelled +
           cache_hits;
  }
  /// Every SOLVE frame must land here exactly once.
  std::int64_t accounted_requests() const {
    // Framing-level rejects (bad_frame / frame_too_large) never became
    // SOLVE requests; the remaining reject reasons each consumed one.
    const std::int64_t framing_rejects =
        rejected_by_reason[static_cast<int>(RejectReason::kBadFrame)] +
        rejected_by_reason[static_cast<int>(
            RejectReason::kFrameTooLarge)];
    return terminals() + rejected_total - framing_rejects;
  }
};

class ServerMetrics {
 public:
  struct Options {
    /// Queue-wait budget that trips the watchdog (rolling p95 above it
    /// = overloaded). 0 disables the watchdog.
    double queue_budget_ms = 500;
    /// Samples needed before the watchdog may trip.
    std::int64_t watchdog_min_samples = 8;
    std::size_t latency_window = 512;
  };

  ServerMetrics() : ServerMetrics(Options()) {}
  explicit ServerMetrics(Options options);

  void on_frame() { frames_.fetch_add(1, std::memory_order_relaxed); }
  void on_solve_request() {
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
  void on_reject(RejectReason reason);
  /// Books one admitted request's terminal state plus its latencies.
  void on_terminal(Terminal t, double latency_ms, double queue_wait_ms);

  bool watchdog_tripped() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// Marks the cache as configured: emit_metric_lines/json add the
  /// cache_* fields. Off by default so cache-off output stays
  /// byte-identical to the pre-cache server. Set before serving.
  void set_cache_enabled(bool enabled) { cache_enabled_ = enabled; }

  MetricsSnapshot snapshot() const;

  /// One "LERA_METRIC server_<name> <value>" line per counter/quantile.
  void emit_metric_lines(std::ostream& os) const;

  /// The snapshot as a flat JSON object (BENCH_server.json building
  /// block).
  std::string json() const;

 private:
  void update_watchdog();

  Options options_;
  std::atomic<std::int64_t> frames_{0};
  std::atomic<std::int64_t> requests_{0};
  std::atomic<std::int64_t> served_{0};
  std::atomic<std::int64_t> degraded_{0};
  std::atomic<std::int64_t> infeasible_{0};
  std::atomic<std::int64_t> timed_out_{0};
  std::atomic<std::int64_t> cancelled_{0};
  std::atomic<std::int64_t> cache_hits_{0};
  std::array<std::atomic<std::int64_t>, kNumRejectReasons> rejected_{};
  LatencyWindow latency_;
  LatencyWindow queue_wait_;
  LatencyWindow cache_hit_latency_;
  std::atomic<bool> tripped_{false};
  bool cache_enabled_ = false;
};

}  // namespace lera::server
