#include "server/admission.hpp"

#include <algorithm>

namespace lera::server {

std::string to_string(RejectReason reason) {
  switch (reason) {
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kTenantQuota:
      return "tenant_quota";
    case RejectReason::kDeadlineInfeasible:
      return "deadline_infeasible";
    case RejectReason::kFrameTooLarge:
      return "frame_too_large";
    case RejectReason::kBadFrame:
      return "bad_frame";
    case RejectReason::kBadRequest:
      return "bad_request";
    case RejectReason::kDraining:
      return "draining";
    case RejectReason::kMemoryInfeasible:
      return "memory_infeasible";
    case RejectReason::kWorkerCrashed:
      return "worker_crashed";
    case RejectReason::kQuarantined:
      return "quarantined";
  }
  return "unknown";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {}

AdmissionVerdict AdmissionController::try_admit(const std::string& tenant,
                                                double deadline_ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  AdmissionVerdict v;
  if (draining_) {
    v.reason = RejectReason::kDraining;
    v.detail = "server is draining; not accepting new work";
    return v;
  }
  if (deadline_ms >= 0) {
    if (deadline_ms == 0) {
      v.reason = RejectReason::kDeadlineInfeasible;
      v.detail = "zero-millisecond deadline can never be met";
      return v;
    }
    if (options_.min_feasible_deadline_ms > 0 &&
        deadline_ms < options_.min_feasible_deadline_ms) {
      v.reason = RejectReason::kDeadlineInfeasible;
      v.detail = "declared deadline of " + std::to_string(deadline_ms) +
                 " ms is below the " +
                 std::to_string(options_.min_feasible_deadline_ms) +
                 " ms service floor";
      return v;
    }
    if (options_.estimate_queue_wait && ewma_seeded_ &&
        ewma_wait_ms_ > deadline_ms) {
      v.reason = RejectReason::kDeadlineInfeasible;
      v.detail = "estimated queue wait of " +
                 std::to_string(ewma_wait_ms_) +
                 " ms already exceeds the declared deadline of " +
                 std::to_string(deadline_ms) + " ms";
      return v;
    }
  }
  if (in_flight_ >= options_.max_queue) {
    v.reason = RejectReason::kQueueFull;
    v.detail = "admission queue is full (" +
               std::to_string(options_.max_queue) + " in flight)";
    return v;
  }
  int& tenant_count =
      per_tenant_[tenant.empty() ? std::string("default") : tenant];
  if (options_.per_tenant_queue > 0 &&
      tenant_count >= options_.per_tenant_queue) {
    v.reason = RejectReason::kTenantQuota;
    v.detail = "tenant quota is full (" +
               std::to_string(options_.per_tenant_queue) +
               " in flight for this tenant)";
    return v;
  }
  ++in_flight_;
  ++tenant_count;
  v.admitted = true;
  return v;
}

void AdmissionController::release(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mutex_);
  in_flight_ = std::max(0, in_flight_ - 1);
  const auto it =
      per_tenant_.find(tenant.empty() ? std::string("default") : tenant);
  if (it != per_tenant_.end()) {
    it->second = std::max(0, it->second - 1);
    if (it->second == 0) per_tenant_.erase(it);
  }
}

void AdmissionController::record_queue_wait_ms(double ms) {
  if (ms < 0) ms = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (!ewma_seeded_) {
    ewma_wait_ms_ = ms;
    ewma_seeded_ = true;
    return;
  }
  ewma_wait_ms_ =
      options_.ewma_alpha * ms + (1 - options_.ewma_alpha) * ewma_wait_ms_;
}

void AdmissionController::begin_drain() {
  std::lock_guard<std::mutex> lock(mutex_);
  draining_ = true;
}

bool AdmissionController::draining() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return draining_;
}

int AdmissionController::in_flight() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return in_flight_;
}

int AdmissionController::tenant_in_flight(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it =
      per_tenant_.find(tenant.empty() ? std::string("default") : tenant);
  return it == per_tenant_.end() ? 0 : it->second;
}

double AdmissionController::estimated_queue_wait_ms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ewma_seeded_ ? ewma_wait_ms_ : 0;
}

}  // namespace lera::server
