#include "server/metrics.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace lera::server {

std::string to_string(Terminal t) {
  switch (t) {
    case Terminal::kServed:
      return "served";
    case Terminal::kDegraded:
      return "degraded";
    case Terminal::kInfeasible:
      return "infeasible";
    case Terminal::kTimedOut:
      return "timed_out";
    case Terminal::kCancelled:
      return "cancelled";
    case Terminal::kCacheHit:
      return "cache_hit";
  }
  return "unknown";
}

// --- LatencyWindow ------------------------------------------------------

LatencyWindow::LatencyWindow(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 8)) {
  ring_.reserve(capacity_);
}

void LatencyWindow::record(double ms) {
  if (ms < 0) ms = 0;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(ms);
  } else {
    ring_[next_] = ms;
  }
  next_ = (next_ + 1) % capacity_;
  filled_ = ring_.size();
  ++total_;
  max_ms_ = std::max(max_ms_, ms);
}

double LatencyWindow::quantile(double p) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) return 0;
  std::vector<double> scratch = ring_;
  const auto rank = static_cast<std::size_t>(
      std::clamp(p, 0.0, 1.0) * static_cast<double>(scratch.size() - 1) +
      0.5);
  std::nth_element(scratch.begin(),
                   scratch.begin() + static_cast<std::ptrdiff_t>(rank),
                   scratch.end());
  return scratch[rank];
}

LatencySummary LatencyWindow::summary() const {
  LatencySummary s;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    s.count = total_;
    s.max_ms = max_ms_;
  }
  s.p50_ms = quantile(0.50);
  s.p95_ms = quantile(0.95);
  s.p99_ms = quantile(0.99);
  return s;
}

std::int64_t LatencyWindow::count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

// --- ServerMetrics ------------------------------------------------------

ServerMetrics::ServerMetrics(Options options)
    : options_(options),
      latency_(options.latency_window),
      queue_wait_(options.latency_window),
      cache_hit_latency_(options.latency_window) {}

void ServerMetrics::on_reject(RejectReason reason) {
  rejected_[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
}

void ServerMetrics::on_terminal(Terminal t, double latency_ms,
                                double queue_wait_ms) {
  if (t == Terminal::kCacheHit) {
    // Hits never queue or solve: they get their own latency window and
    // stay out of the queue-wait samples that drive the watchdog.
    cache_hits_.fetch_add(1, std::memory_order_relaxed);
    cache_hit_latency_.record(latency_ms);
    return;
  }
  switch (t) {
    case Terminal::kServed:
      served_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Terminal::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Terminal::kInfeasible:
      infeasible_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Terminal::kTimedOut:
      timed_out_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Terminal::kCancelled:
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      break;
    case Terminal::kCacheHit:
      break;  // Handled above.
  }
  latency_.record(latency_ms);
  queue_wait_.record(queue_wait_ms);
  update_watchdog();
}

void ServerMetrics::update_watchdog() {
  if (options_.queue_budget_ms <= 0) return;
  if (queue_wait_.count() < options_.watchdog_min_samples) return;
  const double p95 = queue_wait_.quantile(0.95);
  if (p95 > options_.queue_budget_ms) {
    tripped_.store(true, std::memory_order_release);
  } else if (p95 < options_.queue_budget_ms * 0.5) {
    // Hysteresis: recover only once the rolling p95 is clearly back
    // under budget, so the health endpoint does not flap at the edge.
    tripped_.store(false, std::memory_order_release);
  }
}

MetricsSnapshot ServerMetrics::snapshot() const {
  MetricsSnapshot s;
  s.frames_received = frames_.load(std::memory_order_relaxed);
  s.solve_requests = requests_.load(std::memory_order_relaxed);
  s.served = served_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.infeasible = infeasible_.load(std::memory_order_relaxed);
  s.timed_out = timed_out_.load(std::memory_order_relaxed);
  s.cancelled = cancelled_.load(std::memory_order_relaxed);
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.cache_hit_latency = cache_hit_latency_.summary();
  for (int i = 0; i < kNumRejectReasons; ++i) {
    s.rejected_by_reason[static_cast<std::size_t>(i)] =
        rejected_[static_cast<std::size_t>(i)].load(
            std::memory_order_relaxed);
    s.rejected_total += s.rejected_by_reason[static_cast<std::size_t>(i)];
  }
  s.latency = latency_.summary();
  s.queue_wait = queue_wait_.summary();
  s.watchdog_tripped = tripped_.load(std::memory_order_acquire);
  s.watchdog_budget_ms = options_.queue_budget_ms;
  return s;
}

void ServerMetrics::emit_metric_lines(std::ostream& os) const {
  const MetricsSnapshot s = snapshot();
  os << "LERA_METRIC server_frames_received " << s.frames_received << "\n"
     << "LERA_METRIC server_solve_requests " << s.solve_requests << "\n"
     << "LERA_METRIC server_served " << s.served << "\n"
     << "LERA_METRIC server_degraded " << s.degraded << "\n"
     << "LERA_METRIC server_infeasible " << s.infeasible << "\n"
     << "LERA_METRIC server_timed_out " << s.timed_out << "\n"
     << "LERA_METRIC server_cancelled " << s.cancelled << "\n"
     << "LERA_METRIC server_rejected_total " << s.rejected_total << "\n";
  for (int i = 0; i < kNumRejectReasons; ++i) {
    os << "LERA_METRIC server_rejected_"
       << to_string(static_cast<RejectReason>(i)) << " "
       << s.rejected_by_reason[static_cast<std::size_t>(i)] << "\n";
  }
  os << "LERA_METRIC server_latency_p50_ms " << s.latency.p50_ms << "\n"
     << "LERA_METRIC server_latency_p95_ms " << s.latency.p95_ms << "\n"
     << "LERA_METRIC server_latency_p99_ms " << s.latency.p99_ms << "\n"
     << "LERA_METRIC server_queue_wait_p95_ms " << s.queue_wait.p95_ms
     << "\n"
     << "LERA_METRIC server_watchdog_tripped "
     << (s.watchdog_tripped ? 1 : 0) << "\n";
  if (cache_enabled_) {
    // Gated on the cache being configured so cache-off STATS output is
    // byte-identical to the pre-cache server.
    os << "LERA_METRIC server_cache_hits " << s.cache_hits << "\n"
       << "LERA_METRIC server_cache_hit_p50_ms "
       << s.cache_hit_latency.p50_ms << "\n"
       << "LERA_METRIC server_cache_hit_p99_ms "
       << s.cache_hit_latency.p99_ms << "\n";
  }
}

std::string ServerMetrics::json() const {
  const MetricsSnapshot s = snapshot();
  std::ostringstream os;
  os << "{";
  os << "\"frames_received\":" << s.frames_received
     << ",\"solve_requests\":" << s.solve_requests
     << ",\"served\":" << s.served << ",\"degraded\":" << s.degraded
     << ",\"infeasible\":" << s.infeasible
     << ",\"timed_out\":" << s.timed_out
     << ",\"cancelled\":" << s.cancelled
     << ",\"rejected_total\":" << s.rejected_total << ",\"rejected\":{";
  for (int i = 0; i < kNumRejectReasons; ++i) {
    if (i > 0) os << ",";
    os << "\"" << to_string(static_cast<RejectReason>(i))
       << "\":" << s.rejected_by_reason[static_cast<std::size_t>(i)];
  }
  os << "},\"latency_ms\":{\"p50\":" << s.latency.p50_ms
     << ",\"p95\":" << s.latency.p95_ms << ",\"p99\":" << s.latency.p99_ms
     << ",\"max\":" << s.latency.max_ms << "}"
     << ",\"queue_wait_ms\":{\"p50\":" << s.queue_wait.p50_ms
     << ",\"p95\":" << s.queue_wait.p95_ms
     << ",\"p99\":" << s.queue_wait.p99_ms << "}";
  if (cache_enabled_) {
    os << ",\"cache_hits\":" << s.cache_hits
       << ",\"cache_hit_latency_ms\":{\"p50\":"
       << s.cache_hit_latency.p50_ms
       << ",\"p99\":" << s.cache_hit_latency.p99_ms << "}";
  }
  os << ",\"watchdog_tripped\":" << (s.watchdog_tripped ? "true" : "false")
     << "}";
  return os.str();
}

}  // namespace lera::server
