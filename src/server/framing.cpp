#include "server/framing.hpp"

#include <algorithm>
#include <cctype>
#include <limits>
#include <sstream>

namespace lera::server {

namespace {

constexpr std::size_t kMaxTokenBytes = 64;

/// Strict non-negative integer parse into long long; nullopt on any
/// non-digit, overflow, or empty input. The wire format never needs
/// signs, exponents, or locale surprises.
std::optional<long long> parse_uint(std::string_view text) {
  if (text.empty() || text.size() > 18) return std::nullopt;
  long long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + (c - '0');
  }
  return value;
}

std::optional<FrameVerb> parse_verb(std::string_view token) {
  if (token == "SOLVE") return FrameVerb::kSolve;
  if (token == "HEALTH") return FrameVerb::kHealth;
  if (token == "STATS") return FrameVerb::kStats;
  if (token == "DRAIN") return FrameVerb::kDrain;
  if (token == "PING") return FrameVerb::kPing;
  return std::nullopt;
}

/// Ids and tenant names travel inside response lines, so they must not
/// be able to forge protocol structure: printable, no spaces/quotes.
bool valid_token(std::string_view token) {
  if (token.empty() || token.size() > kMaxTokenBytes) return false;
  return std::all_of(token.begin(), token.end(), [](unsigned char c) {
    return std::isgraph(c) != 0 && c != '"';
  });
}

FrameEvent make_error(FrameError error, std::string id,
                      std::string detail) {
  FrameEvent ev;
  ev.ok = false;
  ev.error = error;
  ev.id = std::move(id);
  ev.detail = std::move(detail);
  return ev;
}

}  // namespace

std::string to_string(FrameVerb verb) {
  switch (verb) {
    case FrameVerb::kSolve:
      return "SOLVE";
    case FrameVerb::kHealth:
      return "HEALTH";
    case FrameVerb::kStats:
      return "STATS";
    case FrameVerb::kDrain:
      return "DRAIN";
    case FrameVerb::kPing:
      return "PING";
  }
  return "UNKNOWN";
}

std::string to_string(FrameError error) {
  switch (error) {
    case FrameError::kBadFrame:
      return "bad_frame";
    case FrameError::kFrameTooLarge:
      return "frame_too_large";
  }
  return "bad_frame";
}

FrameDecoder::FrameDecoder(Options options) : options_(options) {
  options_.max_header_bytes = std::max<std::size_t>(
      options_.max_header_bytes, 16);  // room for "SOLVE 0\n" at least
}

std::size_t FrameDecoder::buffered_bytes() const {
  return header_.size() + pending_.payload.size();
}

void FrameDecoder::parse_header(const std::string& line,
                                std::vector<FrameEvent>& out) {
  // Tokenise on single spaces; tolerate repeated spaces.
  std::vector<std::string_view> tokens;
  std::string_view rest = line;
  while (!rest.empty()) {
    const std::size_t sp = rest.find(' ');
    const std::string_view tok = rest.substr(0, sp);
    if (!tok.empty()) tokens.push_back(tok);
    if (sp == std::string_view::npos) break;
    rest.remove_prefix(sp + 1);
  }

  // Best-effort id recovery so malformed headers can still be rejected
  // by name: scan for an id=... token before validating anything else.
  std::string found_id;
  for (const std::string_view tok : tokens) {
    if (tok.rfind("id=", 0) == 0 && valid_token(tok.substr(3))) {
      found_id = std::string(tok.substr(3));
    }
  }

  if (tokens.size() < 2) {
    out.push_back(make_error(FrameError::kBadFrame, found_id,
                             "header needs '<VERB> <payload_len>'"));
    return;
  }
  const std::optional<FrameVerb> verb = parse_verb(tokens[0]);
  if (!verb.has_value()) {
    out.push_back(make_error(
        FrameError::kBadFrame, found_id,
        "unknown verb '" + std::string(tokens[0].substr(0, 16)) + "'"));
    return;
  }
  const std::optional<long long> len = parse_uint(tokens[1]);
  if (!len.has_value()) {
    out.push_back(make_error(FrameError::kBadFrame, found_id,
                             "payload length is not a non-negative "
                             "integer"));
    return;
  }

  Frame frame;
  frame.verb = *verb;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    const std::string_view tok = tokens[i];
    const std::size_t eq = tok.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      out.push_back(make_error(FrameError::kBadFrame, found_id,
                               "malformed header token '" +
                                   std::string(tok.substr(0, 24)) + "'"));
      return;
    }
    const std::string_view key = tok.substr(0, eq);
    const std::string_view value = tok.substr(eq + 1);
    if (key == "id") {
      if (!valid_token(value)) {
        out.push_back(make_error(FrameError::kBadFrame, found_id,
                                 "invalid id token"));
        return;
      }
      frame.id = std::string(value);
    } else if (key == "tenant") {
      if (!valid_token(value)) {
        out.push_back(make_error(FrameError::kBadFrame, found_id,
                                 "invalid tenant token"));
        return;
      }
      frame.tenant = std::string(value);
    } else if (key == "deadline_ms") {
      const std::optional<long long> ms = parse_uint(value);
      if (!ms.has_value()) {
        out.push_back(make_error(FrameError::kBadFrame, found_id,
                                 "deadline_ms is not a non-negative "
                                 "integer"));
        return;
      }
      frame.deadline_ms = *ms;
    }
    // Unknown keys: ignored (forward compatibility).
  }

  if (frame.verb != FrameVerb::kSolve && *len != 0) {
    out.push_back(make_error(FrameError::kBadFrame, frame.id,
                             "control frame " + to_string(frame.verb) +
                                 " must declare a zero-length payload"));
    // Skip the declared bytes (never buffered) so the stream
    // resynchronises at the real next header instead of misparsing
    // the payload as headers.
    pending_id_ = frame.id;
    declared_ = static_cast<std::size_t>(*len);
    remaining_ = declared_;
    state_ = State::kSkipPayload;
    return;
  }

  const auto payload_len = static_cast<std::size_t>(*len);
  if (payload_len > options_.max_frame_bytes) {
    // Typed rejection now; the payload is skipped, not buffered, and
    // the connection lives on to serve the next frame.
    out.push_back(make_error(
        FrameError::kFrameTooLarge, frame.id,
        "declared payload of " + std::to_string(payload_len) +
            " bytes exceeds the " +
            std::to_string(options_.max_frame_bytes) + "-byte cap"));
    pending_id_ = frame.id;
    declared_ = payload_len;
    remaining_ = payload_len;
    state_ = remaining_ > 0 ? State::kSkipPayload : State::kHeader;
    return;
  }

  if (payload_len == 0) {
    out.push_back(FrameEvent{true, std::move(frame), FrameError::kBadFrame,
                             "", ""});
    state_ = State::kHeader;
    return;
  }
  pending_ = std::move(frame);
  pending_.payload.clear();
  pending_.payload.reserve(payload_len);
  declared_ = payload_len;
  remaining_ = payload_len;
  state_ = State::kPayload;
}

std::vector<FrameEvent> FrameDecoder::feed(std::string_view bytes) {
  std::vector<FrameEvent> out;
  while (!bytes.empty()) {
    switch (state_) {
      case State::kHeader: {
        const std::size_t nl = bytes.find('\n');
        const std::size_t take =
            nl == std::string_view::npos ? bytes.size() : nl;
        if (header_.size() + take > options_.max_header_bytes) {
          out.push_back(make_error(
              FrameError::kBadFrame, "",
              "header exceeds " +
                  std::to_string(options_.max_header_bytes) + " bytes"));
          header_.clear();
          state_ = State::kResync;
          break;  // re-enter the loop in kResync on the same bytes
        }
        header_.append(bytes.substr(0, take));
        if (nl == std::string_view::npos) {
          bytes = {};
          break;
        }
        bytes.remove_prefix(nl + 1);
        if (!header_.empty() && header_.back() == '\r') {
          header_.pop_back();
        }
        if (header_.empty() ||
            header_.find_first_not_of(" \t") == std::string::npos) {
          header_.clear();  // blank separator line
          break;
        }
        const std::string line = std::move(header_);
        header_.clear();
        parse_header(line, out);
        break;
      }
      case State::kPayload: {
        const std::size_t take = std::min(remaining_, bytes.size());
        pending_.payload.append(bytes.substr(0, take));
        bytes.remove_prefix(take);
        remaining_ -= take;
        if (remaining_ == 0) {
          out.push_back(FrameEvent{true, std::move(pending_),
                                   FrameError::kBadFrame, "", ""});
          pending_ = Frame{};
          state_ = State::kHeader;
        }
        break;
      }
      case State::kSkipPayload: {
        const std::size_t take = std::min(remaining_, bytes.size());
        bytes.remove_prefix(take);
        remaining_ -= take;
        if (remaining_ == 0) {
          pending_id_.clear();
          state_ = State::kHeader;
        }
        break;
      }
      case State::kResync: {
        const std::size_t nl = bytes.find('\n');
        if (nl == std::string_view::npos) {
          bytes = {};
          break;
        }
        bytes.remove_prefix(nl + 1);
        state_ = State::kHeader;
        break;
      }
    }
  }
  return out;
}

std::optional<FrameEvent> FrameDecoder::finish() {
  switch (state_) {
    case State::kHeader:
      if (!header_.empty() &&
          header_.find_first_not_of(" \t\r") != std::string::npos) {
        header_.clear();
        return make_error(FrameError::kBadFrame, "",
                          "stream ended inside a frame header");
      }
      return std::nullopt;
    case State::kPayload: {
      FrameEvent ev = make_error(
          FrameError::kBadFrame, pending_.id,
          "stream ended " + std::to_string(remaining_) +
              " bytes short of the declared " +
              std::to_string(declared_) + "-byte payload");
      pending_ = Frame{};
      state_ = State::kHeader;
      return ev;
    }
    case State::kSkipPayload: {
      FrameEvent ev = make_error(
          FrameError::kBadFrame, pending_id_,
          "stream ended while skipping an oversized payload");
      pending_id_.clear();
      state_ = State::kHeader;
      return ev;
    }
    case State::kResync:
      state_ = State::kHeader;
      return make_error(FrameError::kBadFrame, "",
                        "stream ended while resynchronising after a "
                        "malformed header");
  }
  return std::nullopt;
}

std::string encode_frame(const Frame& frame) {
  std::ostringstream os;
  os << to_string(frame.verb) << ' ' << frame.payload.size();
  if (!frame.id.empty()) os << " id=" << frame.id;
  if (!frame.tenant.empty()) os << " tenant=" << frame.tenant;
  if (frame.deadline_ms >= 0) os << " deadline_ms=" << frame.deadline_ms;
  os << '\n' << frame.payload;
  return os.str();
}

}  // namespace lera::server
