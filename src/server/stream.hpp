#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

/// \file stream.hpp
/// Transport abstraction for the allocation server. The server core
/// (server.hpp) speaks to one ByteStream per connection and never sees
/// where the bytes come from, so the same request path serves a Unix or
/// TCP socket (listener.hpp, FdStream), the stdin/stdout pipe mode, and
/// the fully in-memory MemoryChannel that tests and the load-generator
/// bench use to drive the server deterministically — including
/// byte-dribbled writes and mid-frame disconnects.

namespace lera::server {

/// Blocking byte transport, one per connection. Implementations must
/// allow one concurrent reader and one concurrent writer (the server
/// core reads frames on one thread while streaming responses on
/// another); they need not support two concurrent readers.
class ByteStream {
 public:
  virtual ~ByteStream() = default;

  /// Soft-timeout result of read(): no data arrived within the wait
  /// slice, the stream is still open, call again. Lets the server's
  /// reader loop observe drain deadlines instead of blocking forever
  /// on a silent connection.
  static constexpr std::ptrdiff_t kReadAgain = -2;

  /// Blocks up to a bounded slice for at least one byte. Returns the
  /// count read (> 0), 0 on orderly end-of-stream, -1 on a transport
  /// error / closed stream, or kReadAgain on a soft timeout.
  virtual std::ptrdiff_t read(char* buffer, std::size_t max_bytes) = 0;

  /// Writes the whole string or fails. False once the peer is gone —
  /// the server uses that as its disconnect signal.
  virtual bool write(std::string_view data) = 0;

  /// Tears the stream down: pending and future reads/writes fail fast.
  /// Idempotent; safe to call from any thread.
  virtual void close() = 0;
};

/// One direction of an in-memory connection: a bounded byte queue with
/// blocking read/write and an explicit closed state. Bounded so a
/// producer that outruns its consumer blocks instead of growing the
/// buffer without limit — the same backpressure a socket gives.
class BytePipe {
 public:
  explicit BytePipe(std::size_t capacity = 1 << 16);

  /// Appends, blocking while full. False if the pipe closed.
  bool write(std::string_view data);

  /// Blocks up to ~250 ms for >= 1 byte; 0 on close-after-drain, -1 on
  /// hard close, ByteStream::kReadAgain on the soft timeout.
  std::ptrdiff_t read(char* buffer, std::size_t max_bytes);

  /// Orderly close: readers drain what is buffered, then see EOF.
  void close_write();

  /// Hard close: buffered bytes are dropped, reads return -1. Models a
  /// client that vanished mid-frame (chaos harness).
  void close_hard();

 private:
  std::mutex mutex_;
  std::condition_variable readable_;
  std::condition_variable writable_;
  std::string buffer_;
  std::size_t capacity_;
  bool write_closed_ = false;
  bool hard_closed_ = false;
};

/// A full-duplex in-memory connection: the client holds one end, the
/// server core the other; both ends are ByteStreams over the same pair
/// of BytePipes, with directions crossed.
class MemoryChannel {
 public:
  explicit MemoryChannel(std::size_t capacity = 1 << 16);
  ~MemoryChannel();  ///< Out of line: End is incomplete here.

  /// The server's end (reads what the client wrote and vice versa).
  ByteStream& server_end();
  /// The client's end.
  ByteStream& client_end();

  /// Client finished sending requests (server sees EOF after draining).
  void close_client_writes();
  /// Server side finished responding (client sees EOF after draining);
  /// called by harnesses once serve() returned so client readers stop.
  void close_server_writes();
  /// Abrupt client death: both directions fail fast, buffered bytes
  /// are dropped.
  void disconnect_client();

 private:
  class End;
  std::shared_ptr<BytePipe> to_server_;
  std::shared_ptr<BytePipe> to_client_;
  std::unique_ptr<End> server_end_;
  std::unique_ptr<End> client_end_;
};

/// ByteStream over POSIX file descriptors (socket, or the stdin/stdout
/// pair of pipe mode). Owns neither fd unless told to.
class FdStream : public ByteStream {
 public:
  /// \p read_fd / \p write_fd may be the same fd (socket) or distinct
  /// (pipe mode: 0 and 1). When \p owns_fds, close() closes them.
  FdStream(int read_fd, int write_fd, bool owns_fds);
  ~FdStream() override;

  std::ptrdiff_t read(char* buffer, std::size_t max_bytes) override;
  bool write(std::string_view data) override;
  void close() override;

  /// True once the peer vanished abruptly (ECONNRESET on read,
  /// EPIPE/ECONNRESET on write). Both map to the clean client-gone
  /// path — read() reports end-of-stream, write() returns false — so
  /// mid-request disconnects under TCP are accounted exactly like the
  /// in-memory chaos harness's disconnects, never as generic stream
  /// errors. This flag preserves the distinction for diagnostics.
  bool peer_reset() const {
    return peer_reset_.load(std::memory_order_relaxed);
  }

 private:
  int read_fd_;
  int write_fd_;
  bool owns_fds_;
  std::mutex close_mutex_;
  bool closed_ = false;
  std::atomic<bool> peer_reset_{false};
};

}  // namespace lera::server
