#include "server/stream.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace lera::server {

// --- BytePipe -----------------------------------------------------------

BytePipe::BytePipe(std::size_t capacity)
    : capacity_(std::max<std::size_t>(capacity, 1)) {}

bool BytePipe::write(std::string_view data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    std::unique_lock<std::mutex> lock(mutex_);
    writable_.wait(lock, [&] {
      return hard_closed_ || write_closed_ || buffer_.size() < capacity_;
    });
    if (hard_closed_ || write_closed_) return false;
    const std::size_t room = capacity_ - buffer_.size();
    const std::size_t n = std::min(room, data.size() - offset);
    buffer_.append(data.substr(offset, n));
    offset += n;
    readable_.notify_all();
  }
  return true;
}

std::ptrdiff_t BytePipe::read(char* buffer, std::size_t max_bytes) {
  if (max_bytes == 0) return 0;
  std::unique_lock<std::mutex> lock(mutex_);
  const bool ready = readable_.wait_for(
      lock, std::chrono::milliseconds(250), [&] {
        return hard_closed_ || write_closed_ || !buffer_.empty();
      });
  if (!ready) return ByteStream::kReadAgain;
  if (hard_closed_) return -1;
  if (buffer_.empty()) return 0;  // write_closed_ and drained: EOF.
  const std::size_t n = std::min(max_bytes, buffer_.size());
  std::memcpy(buffer, buffer_.data(), n);
  buffer_.erase(0, n);
  writable_.notify_all();
  return static_cast<std::ptrdiff_t>(n);
}

void BytePipe::close_write() {
  std::lock_guard<std::mutex> lock(mutex_);
  write_closed_ = true;
  readable_.notify_all();
  writable_.notify_all();
}

void BytePipe::close_hard() {
  std::lock_guard<std::mutex> lock(mutex_);
  hard_closed_ = true;
  buffer_.clear();
  readable_.notify_all();
  writable_.notify_all();
}

// --- MemoryChannel ------------------------------------------------------

class MemoryChannel::End : public ByteStream {
 public:
  End(std::shared_ptr<BytePipe> in, std::shared_ptr<BytePipe> out)
      : in_(std::move(in)), out_(std::move(out)) {}

  std::ptrdiff_t read(char* buffer, std::size_t max_bytes) override {
    return in_->read(buffer, max_bytes);
  }

  bool write(std::string_view data) override { return out_->write(data); }

  void close() override {
    in_->close_hard();
    out_->close_hard();
  }

 private:
  std::shared_ptr<BytePipe> in_;
  std::shared_ptr<BytePipe> out_;
};

MemoryChannel::MemoryChannel(std::size_t capacity)
    : to_server_(std::make_shared<BytePipe>(capacity)),
      to_client_(std::make_shared<BytePipe>(capacity)),
      server_end_(std::make_unique<End>(to_server_, to_client_)),
      client_end_(std::make_unique<End>(to_client_, to_server_)) {}

MemoryChannel::~MemoryChannel() = default;

ByteStream& MemoryChannel::server_end() { return *server_end_; }

ByteStream& MemoryChannel::client_end() { return *client_end_; }

void MemoryChannel::close_client_writes() { to_server_->close_write(); }

void MemoryChannel::close_server_writes() { to_client_->close_write(); }

void MemoryChannel::disconnect_client() {
  to_server_->close_hard();
  to_client_->close_hard();
}

// --- FdStream -----------------------------------------------------------

FdStream::FdStream(int read_fd, int write_fd, bool owns_fds)
    : read_fd_(read_fd), write_fd_(write_fd), owns_fds_(owns_fds) {}

FdStream::~FdStream() {
  if (owns_fds_) close();
}

std::ptrdiff_t FdStream::read(char* buffer, std::size_t max_bytes) {
  {
    std::lock_guard<std::mutex> lock(close_mutex_);
    if (closed_) return -1;
  }
  struct pollfd pfd{};
  pfd.fd = read_fd_;
  pfd.events = POLLIN;
  const int ready = ::poll(&pfd, 1, 250);
  if (ready < 0) return errno == EINTR ? kReadAgain : -1;
  if (ready == 0) return kReadAgain;
  for (;;) {
    const ssize_t n = ::read(read_fd_, buffer, max_bytes);
    if (n >= 0) return n;
    if (errno == EINTR) continue;
    if (errno == ECONNRESET) {
      // A peer that slammed its socket shut mid-stream is the same
      // protocol event as an orderly FIN from our side of the ledger:
      // the client is gone. Report clean end-of-stream (flagged) so
      // the server accounts the cut-off with the exact client-gone
      // discipline instead of a generic stream error.
      peer_reset_.store(true, std::memory_order_relaxed);
      return 0;
    }
    return -1;
  }
}

bool FdStream::write(std::string_view data) {
  std::size_t offset = 0;
  while (offset < data.size()) {
    const ssize_t n =
        ::write(write_fd_, data.data() + offset, data.size() - offset);
    if (n > 0) {
      offset += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EPIPE || errno == ECONNRESET)) {
      // Writing into a vanished peer: remember it was a disconnect,
      // not a transport fault, for disconnect-accounting assertions.
      peer_reset_.store(true, std::memory_order_relaxed);
    }
    return false;
  }
  return true;
}

void FdStream::close() {
  std::lock_guard<std::mutex> lock(close_mutex_);
  if (closed_) return;
  closed_ = true;
  if (owns_fds_) {
    ::close(read_fd_);
    if (write_fd_ != read_fd_) ::close(write_fd_);
  }
}

}  // namespace lera::server
