#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "engine/engine.hpp"
#include "netflow/cancel.hpp"
#include "server/admission.hpp"
#include "server/framing.hpp"
#include "server/metrics.hpp"
#include "server/stream.hpp"
#include "server/supervisor.hpp"

/// \file server.hpp
/// The allocation service core: a long-lived front end over one shared
/// engine::Engine that turns framed .lt requests (framing.hpp) into
/// streamed LERA_* response lines, and degrades — never falls over —
/// under overload, garbage input, deadline storms, and shutdown.
///
/// One serve(stream) call runs one connection: the calling thread
/// reads and decodes frames, admits or sheds them (admission.hpp), and
/// submits admitted problems to the engine; a per-connection writer
/// thread streams responses back in frame order. Every SOLVE frame is
/// answered with exactly one typed verdict:
///
///   LERA_RESULT <id> status=ok|degraded ... assign=...   (served)
///   LERA_ERROR <id> <reason>                 (valid but infeasible)
///   LERA_TIMEOUT <id> <detail>           (deadline, no usable answer)
///   LERA_CANCELLED <id> <detail>           (disconnect/drain/shutdown)
///   LERA_REJECT <id> reason=<r> detail=...   (shed before solving)
///
/// with reasons queue_full | tenant_quota | deadline_infeasible |
/// frame_too_large | bad_frame | bad_request | draining |
/// memory_infeasible | worker_crashed | quarantined. Control verbs
/// HEALTH / STATS / PING answer inline; DRAIN (or begin_drain(), wired
/// to SIGTERM by the binary) stops admissions, finishes or cancels
/// in-flight work within the grace budget, flushes every response, and
/// ends with "LERA_DRAIN - state=complete ..." so a supervisor can
/// verify nothing was silently dropped.

namespace lera::server {

struct ServerOptions {
  /// Engine configuration shared by every request. threads sizes the
  /// solver pool; task_deadline_seconds is the default per-request
  /// deadline when a frame declares none; alloc.fallback_to_baseline
  /// is forced on so deadline-hit solves degrade to the two-phase
  /// baseline instead of dying (anytime answers under load).
  engine::EngineOptions engine;
  FrameDecoder::Options framing;
  AdmissionOptions admission;
  ServerMetrics::Options metrics;
  /// After begin_drain(), in-flight solves get this long to finish
  /// before they are cancelled (and accounted as cancelled).
  double drain_grace_seconds = 5;
  /// Append the per-segment placement to LERA_RESULT lines
  /// (assign=r0,mem,...). Off for benchmarking huge responses.
  bool echo_assignment = true;
  /// Write "LERA_DRAIN - state=complete ..." plus the LERA_METRIC
  /// block when a drained connection closes.
  bool emit_metrics_on_drain = true;
  /// Crash-isolated execution (supervisor.hpp): with isolation.workers
  /// > 0, admitted solves run in forked worker subprocesses and a
  /// worker death becomes a typed worker_crashed rejection instead of
  /// taking the daemon down. The default (0 workers) solves in-process
  /// with byte-identical output to the pre-isolation server. The
  /// worker's engine options and echo_assignment are copied from this
  /// struct's fields; set isolation.crash_dir / poison_threshold /
  /// backoff / failpoint knobs here.
  SupervisorOptions isolation;
};

struct HealthStatus {
  bool overloaded = false;  ///< Watchdog tripped: queue p95 over budget.
  bool draining = false;
  int in_flight = 0;
  double estimated_queue_wait_ms = 0;
  double queue_p95_ms = 0;
  std::int64_t shed_total = 0;
  /// Engine memory-budget observability (engine.hpp). Bytes currently
  /// charged against the engine's budget, the high-water mark, and the
  /// configured total cap (0 = track-only, never sheds).
  std::int64_t memory_bytes_in_use = 0;
  std::int64_t memory_peak_bytes = 0;
  std::int64_t memory_cap_bytes = 0;
  /// Isolated mode only (isolation_enabled): worker-pool vitals.
  bool isolation_enabled = false;
  int workers_alive = 0;
  std::int64_t worker_crashes = 0;
  std::int64_t worker_restarts = 0;
  std::int64_t quarantined_fingerprints = 0;
  /// Allocation-cache vitals (cache_enabled mode only; the fields are
  /// gated out of HEALTH lines otherwise, like the isolation ones).
  bool cache_enabled = false;
  std::int64_t cache_entries = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_bytes = 0;

  std::string status_word() const {
    return draining ? "draining" : overloaded ? "overloaded" : "ok";
  }
};

class Server {
 public:
  explicit Server(ServerOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves one connection to completion: returns when the peer's
  /// request stream ended (EOF, error, or drain deadline) AND every
  /// pending response was written or accounted. Safe to call from many
  /// threads at once, one per connection.
  void serve(ByteStream& stream);

  /// Graceful shutdown: stop admitting (typed `draining` rejections),
  /// let in-flight work finish within drain_grace_seconds, cancel the
  /// rest, flush responses. Idempotent; callable from any thread
  /// (signal watchers included).
  void begin_drain();
  bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  HealthStatus health() const;
  MetricsSnapshot metrics() const { return metrics_.snapshot(); }
  /// metrics_.json(), plus a "workers" object in isolated mode.
  std::string metrics_json() const;

  const engine::Engine& engine() const { return *engine_; }
  const ServerOptions& options() const { return options_; }
  /// Non-null iff isolation is enabled (options().isolation.workers>0).
  const Supervisor* supervisor() const { return supervisor_.get(); }

 private:
  struct Conn;
  struct ConnEntry;
  struct TextFront;

  void handle_event(Conn& conn, FrameEvent event);
  void handle_solve(Conn& conn, Frame frame, const std::string& id);
  void writer_loop(Conn& conn);
  void finish_isolated(Conn& conn, ConnEntry& entry);
  void maybe_cache_worker_result(const ConnEntry& entry,
                                 const std::string& line);
  void emit_supervisor_metric_lines(std::ostream& os) const;
  void emit_cache_metric_lines(std::ostream& os) const;
  std::string next_auto_id();

  ServerOptions options_;
  std::unique_ptr<engine::Engine> engine_;
  std::unique_ptr<Supervisor> supervisor_;  ///< Isolated mode only.
  /// Server-owned allocation cache (engine.cache_entries > 0): consulted
  /// in handle_solve before admission, so a hit never takes a queue slot
  /// (and in isolated mode never dispatches to a worker). The engine's
  /// own cache knobs are zeroed — one cache, one accounting.
  std::unique_ptr<engine::AllocCache> cache_;
  /// Tier-0 exact-text front over cache_ (same enable knob): raw
  /// request bytes -> the result already served for those exact bytes,
  /// so a byte-identical repeat skips parse + fingerprint entirely and
  /// the hit path is O(payload) instead of O(parse). Populated only
  /// from canonical-cache hits (results that already passed the
  /// certification gate); every audit_rate-th text hit deliberately
  /// falls through to the parse + canonical path so the paranoia
  /// recheck still samples this tier.
  std::unique_ptr<TextFront> text_front_;
  AdmissionController admission_;
  ServerMetrics metrics_;
  std::atomic<bool> draining_{false};
  /// Armed by begin_drain(); in-flight work past it is cancelled.
  netflow::Deadline drain_deadline_;
  std::mutex drain_mutex_;  ///< Guards drain_deadline_ writes/reads.
  std::atomic<std::uint64_t> auto_id_{0};
};

}  // namespace lera::server
