#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

/// \file admission.hpp
/// Admission control for the allocation server: a bounded global queue
/// with per-tenant quotas and shed-on-overload. Every SOLVE frame
/// passes try_admit() before any parsing or solving happens; an
/// admitted request holds one global slot and one tenant slot until it
/// reaches a terminal state (served / degraded / infeasible / timed out
/// / cancelled), at which point release() returns both. Overload is
/// therefore shed at the cheapest possible point — before the .lt text
/// is even parsed — and always with a machine-readable reason, never a
/// silent drop.
///
/// Deadline infeasibility is also an admission concern: a request whose
/// deadline is already smaller than the configured floor, or smaller
/// than the currently *estimated* queue wait (an EWMA over recently
/// observed waits), cannot be served in time no matter what, so it is
/// rejected as deadline_infeasible instead of burning a queue slot to
/// time out later.

namespace lera::server {

/// Every way the server refuses work, shared by the admission layer,
/// the frame decoder mapping, and the response writer. The wire shape
/// is "LERA_REJECT <id> reason=<to_string(reason)> detail=...".
enum class RejectReason {
  kQueueFull,           ///< Global admitted-work bound reached.
  kTenantQuota,         ///< This tenant's quota reached (others fine).
  kDeadlineInfeasible,  ///< Deadline unmeetable at admission time.
  kFrameTooLarge,       ///< Declared payload above the frame cap.
  kBadFrame,            ///< Garbage/truncated framing.
  kBadRequest,          ///< Frame fine, .lt payload failed to parse.
  kDraining,            ///< Server is shutting down gracefully.
  kMemoryInfeasible,    ///< Predicted solve footprint exceeds the memory
                        ///< cap (or current headroom); solving it would
                        ///< be refused anyway, so shed before enqueue.
  kWorkerCrashed,       ///< Isolated mode: the worker subprocess running
                        ///< this request died (signal/exit/OOM-kill/hang)
                        ///< before producing a verdict.
  kQuarantined,         ///< Isolated mode: this exact payload already
                        ///< crashed poison_threshold workers and is
                        ///< refused without dispatch.
};

std::string to_string(RejectReason reason);

/// Number of RejectReason values (metrics arrays are indexed by it).
inline constexpr int kNumRejectReasons = 10;

struct AdmissionOptions {
  /// Global bound on admitted-but-not-finished requests. <= 0 admits
  /// nothing (useful for tests); overload above it sheds queue_full.
  int max_queue = 64;
  /// Per-tenant bound within the global one; <= 0 disables the
  /// per-tenant check.
  int per_tenant_queue = 16;
  /// Static floor: a request declaring deadline_ms below this is
  /// rejected deadline_infeasible up front. 0 = no floor.
  double min_feasible_deadline_ms = 0;
  /// Reject requests whose declared deadline is below the current
  /// queue-wait estimate (EWMA of observed waits).
  bool estimate_queue_wait = true;
  /// EWMA smoothing factor for record_queue_wait_ms.
  double ewma_alpha = 0.2;
};

struct AdmissionVerdict {
  bool admitted = false;
  RejectReason reason = RejectReason::kQueueFull;  ///< When !admitted.
  std::string detail;                              ///< When !admitted.
};

/// Thread-safe; one instance per Server, shared by every connection.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});

  /// Tries to take one global + one tenant slot for a request with the
  /// given declared deadline (-1 = none). On success the caller MUST
  /// eventually release(tenant) exactly once.
  AdmissionVerdict try_admit(const std::string& tenant,
                             double deadline_ms);

  /// Returns the slots of one admitted request.
  void release(const std::string& tenant);

  /// Feeds one observed queue wait into the EWMA estimate.
  void record_queue_wait_ms(double ms);

  /// Refuse all future admissions with kDraining. Sticky.
  void begin_drain();
  bool draining() const;

  int in_flight() const;
  int tenant_in_flight(const std::string& tenant) const;
  double estimated_queue_wait_ms() const;

 private:
  AdmissionOptions options_;
  mutable std::mutex mutex_;
  bool draining_ = false;
  int in_flight_ = 0;
  double ewma_wait_ms_ = 0;
  bool ewma_seeded_ = false;
  std::unordered_map<std::string, int> per_tenant_;
};

}  // namespace lera::server
