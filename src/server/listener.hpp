#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "server/stream.hpp"

/// \file listener.hpp
/// Socket acceptor for the allocation server binary: binds a Unix
/// domain socket or a loopback-friendly TCP socket and hands each
/// accepted connection back as an FdStream for Server::serve(). The
/// accept loop polls in bounded slices so shutdown() (wired to the
/// drain signal handler) unblocks it promptly.

namespace lera::server {

class Listener {
 public:
  /// Binds a Unix domain socket at \p path (any stale socket file at
  /// that path is replaced). Returns nullptr and sets \p error on
  /// failure.
  static std::unique_ptr<Listener> listen_unix(const std::string& path,
                                               std::string* error);

  /// Binds a TCP socket on \p host:\p port (port 0 = ephemeral; see
  /// port()). Returns nullptr and sets \p error on failure.
  static std::unique_ptr<Listener> listen_tcp(const std::string& host,
                                              int port, std::string* error);

  ~Listener();

  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks for the next connection. Returns nullptr once shutdown()
  /// was called (or the listening socket died).
  std::unique_ptr<FdStream> accept();

  /// Unblocks accept() and closes the listening socket. Idempotent and
  /// async-signal-tolerant (only flips an atomic; the accept loop does
  /// the teardown).
  void shutdown();

  /// The bound TCP port (resolves port 0 requests); 0 for Unix sockets.
  int port() const { return port_; }

  /// Human-readable bound endpoint for log lines.
  const std::string& endpoint() const { return endpoint_; }

 private:
  Listener(int fd, int port, std::string endpoint, std::string unix_path);

  int fd_;
  int port_;
  std::string endpoint_;
  std::string unix_path_;  ///< Unlinked on destruction when non-empty.
  std::atomic<bool> shutdown_{false};
};

}  // namespace lera::server
