#include "server/listener.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace lera::server {

namespace {

std::string errno_text(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

Listener::Listener(int fd, int port, std::string endpoint,
                   std::string unix_path)
    : fd_(fd),
      port_(port),
      endpoint_(std::move(endpoint)),
      unix_path_(std::move(unix_path)) {}

Listener::~Listener() {
  shutdown();
  if (fd_ >= 0) ::close(fd_);
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

std::unique_ptr<Listener> Listener::listen_unix(const std::string& path,
                                                std::string* error) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix socket path too long: " + path;
    return nullptr;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("socket");
    return nullptr;
  }
  ::unlink(path.c_str());  // Replace a stale socket file from a crash.
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 64) < 0) {
    if (error != nullptr) *error = errno_text("bind/listen");
    ::close(fd);
    return nullptr;
  }
  return std::unique_ptr<Listener>(
      new Listener(fd, 0, "unix:" + path, path));
}

std::unique_ptr<Listener> Listener::listen_tcp(const std::string& host,
                                               int port,
                                               std::string* error) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    if (error != nullptr) *error = "bad IPv4 address: " + host;
    return nullptr;
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("socket");
    return nullptr;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
          0 ||
      ::listen(fd, 64) < 0) {
    if (error != nullptr) *error = errno_text("bind/listen");
    ::close(fd);
    return nullptr;
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  int bound_port = port;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    bound_port = ntohs(bound.sin_port);
  }
  return std::unique_ptr<Listener>(new Listener(
      fd, bound_port,
      "tcp:" + host + ":" + std::to_string(bound_port), std::string()));
}

std::unique_ptr<FdStream> Listener::accept() {
  for (;;) {
    if (shutdown_.load(std::memory_order_acquire)) return nullptr;
    struct pollfd pfd{};
    pfd.fd = fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, 250);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return nullptr;
    }
    if (ready == 0) continue;
    const int conn = ::accept(fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return nullptr;
    }
    return std::make_unique<FdStream>(conn, conn, /*owns_fds=*/true);
  }
}

void Listener::shutdown() {
  shutdown_.store(true, std::memory_order_release);
}

}  // namespace lera::server
