#include "server/supervisor.hpp"

#include <fcntl.h>
#include <pthread.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>

#include "server/framing.hpp"

namespace lera::server {

namespace {

/// Human/machine-readable description of a reaped worker's wait status.
std::string describe_exit(int status) {
  if (WIFSIGNALED(status)) {
    std::string text = "signal " + std::to_string(WTERMSIG(status));
    if (WTERMSIG(status) == SIGKILL) {
      // SIGKILL is what both an external `kill -9` and the kernel OOM
      // killer look like from here; flag it so operators check dmesg.
      text += " (external kill or kernel oom)";
    }
    return text;
  }
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  return "status " + std::to_string(status);
}

/// Chunked interruptible sleep: returns false if \p stop() fired.
template <typename StopFn>
bool sleep_unless(double seconds, StopFn stop) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    if (stop()) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return !stop();
}

}  // namespace

// --- PendingSolve -------------------------------------------------------

bool PendingSolve::wait_for(double seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::duration<double>(seconds),
               [&] { return done_; });
  return done_;
}

bool PendingSolve::done() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return done_;
}

void PendingSolve::cancel() {
  std::lock_guard<std::mutex> lock(mutex_);
  cancelled_ = true;
  if (!done_ && !claimed_) {
    // Still queued (no slot claimed it): resolve right here so drains
    // and disconnects never wait on a busy pool.
    done_ = true;
    verdict_.kind = WorkerVerdictKind::kCancelled;
    verdict_.detail = "request withdrawn";
  }
  cv_.notify_all();  // The owning slot polls cancelled_ between slices.
}

void PendingSolve::resolve(WorkerVerdictKind kind, std::string line,
                           std::string detail) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (done_) return;
  done_ = true;
  verdict_.kind = kind;
  verdict_.line = std::move(line);
  verdict_.detail = std::move(detail);
  cv_.notify_all();
}

// --- Supervisor ---------------------------------------------------------

/// One worker slot: its dispatcher thread owns the process and socket;
/// only `pid` is shared (worker_pids(), stats()) and mutex-guarded.
struct Supervisor::Slot {
  int index = 0;
  std::thread thread;
  mutable std::mutex mutex;  ///< Guards pid.
  int pid = 0;
  std::unique_ptr<FdStream> stream;
  std::string rx;        ///< Partial verdict line; cleared on crash.
  int crash_streak = 0;  ///< Consecutive deaths; drives the backoff.
  int spawn_count = 0;   ///< Respawn generation; decorrelates injection.
  bool ever_spawned = false;
};

Supervisor::Supervisor(SupervisorOptions options)
    : options_(std::move(options)),
      backoff_state_(options_.backoff_seed + 0x9e3779b97f4a7c15ULL) {
  if (!enabled()) return;
  if (!options_.crash_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(options_.crash_dir, ec);
    // A failure surfaces later as unwritable corpus files; the pool
    // itself must come up regardless.
  }
  slots_.reserve(static_cast<std::size_t>(options_.workers));
  for (int i = 0; i < options_.workers; ++i) {
    auto slot = std::make_unique<Slot>();
    slot->index = i;
    // Eager spawn: pids exist (and are announced) before any request,
    // so chaos drills can target a live worker immediately.
    spawn_worker(*slot);
    slots_.push_back(std::move(slot));
  }
  for (auto& slot : slots_) {
    Slot& s = *slot;
    s.thread = std::thread([this, &s] { slot_main(s); });
  }
}

Supervisor::~Supervisor() {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    shutting_down_ = true;
  }
  queue_cv_.notify_all();
  for (auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  // Slot threads retired their workers on the way out; whatever is
  // still queued resolves here so no request is ever silently dropped.
  std::deque<std::shared_ptr<PendingSolve>> leftovers;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    leftovers.swap(queue_);
  }
  for (const auto& req : leftovers) {
    req->resolve(WorkerVerdictKind::kCancelled, "",
                 "supervisor shut down");
  }
}

std::shared_ptr<PendingSolve> Supervisor::dispatch(
    const std::string& id, const std::string& payload,
    long long deadline_ms) {
  auto req = std::make_shared<PendingSolve>();
  req->id_ = id;
  req->payload_ = payload;
  req->deadline_ms_ = deadline_ms;
  req->fingerprint_ = payload_fingerprint(payload);

  {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    if (quarantined_.count(req->fingerprint_) != 0) {
      const int count = crash_counts_[req->fingerprint_];
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.quarantine_rejects;
      }
      req->resolve(
          WorkerVerdictKind::kQuarantined, "",
          "payload fingerprint " + fingerprint_hex(req->fingerprint_) +
              " crashed " + std::to_string(count) +
              " worker(s) and is quarantined");
      return req;
    }
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (shutting_down_) {
      req->resolve(WorkerVerdictKind::kCancelled, "",
                   "supervisor shut down");
      return req;
    }
    queue_.push_back(req);
  }
  queue_cv_.notify_one();
  return req;
}

void Supervisor::begin_drain(double grace_seconds) {
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (!draining_) {
      draining_ = true;
      drain_deadline_ = netflow::Deadline::after(grace_seconds);
    }
  }
  queue_cv_.notify_all();
}

bool Supervisor::drain_expired() const {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return draining_ && !drain_deadline_.unlimited() &&
         drain_deadline_.expired();
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out = stats_;
  }
  out.workers_alive = 0;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    if (slot->pid > 0) ++out.workers_alive;
  }
  return out;
}

std::vector<int> Supervisor::worker_pids() const {
  std::vector<int> pids;
  for (const auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mutex);
    if (slot->pid > 0) pids.push_back(slot->pid);
  }
  return pids;
}

std::shared_ptr<PendingSolve> Supervisor::next_request() {
  std::unique_lock<std::mutex> lock(queue_mutex_);
  for (;;) {
    if (shutting_down_) return nullptr;
    if (!queue_.empty()) {
      std::shared_ptr<PendingSolve> req = std::move(queue_.front());
      queue_.pop_front();
      return req;
    }
    queue_cv_.wait_for(lock, std::chrono::milliseconds(100));
  }
}

double Supervisor::backoff_seconds(int streak) {
  // PR 4's retry discipline: exponential growth with multiplicative
  // jitter in [0.5, 1.0), capped, seed-deterministic (splitmix64).
  std::uint64_t z;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    z = (backoff_state_ += 0x9e3779b97f4a7c15ULL);
  }
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z = z ^ (z >> 31);
  const double jitter =
      0.5 + 0.5 * static_cast<double>(z >> 11) / 9007199254740992.0;
  const int exponent = std::min(streak - 1, 20);
  const double raw = options_.restart_backoff_seconds *
                     static_cast<double>(1ULL << exponent) * jitter;
  return std::min(raw, options_.restart_backoff_cap_seconds);
}

void Supervisor::spawn_worker(Slot& slot) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return;

  ++slot.spawn_count;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return;
  }
  if (pid == 0) {
    // Worker child. Detach from the daemon's world: default signal
    // handling, no shared stdio (pipe-mode stdout is the protocol
    // stream and must not stay open here), no inherited sockets.
    ::signal(SIGPIPE, SIG_IGN);
    sigset_t none;
    sigemptyset(&none);
    pthread_sigmask(SIG_SETMASK, &none, nullptr);
    const int devnull = ::open("/dev/null", O_RDWR);
    if (devnull >= 0) {
      ::dup2(devnull, 0);
      ::dup2(devnull, 1);
    }
    for (int fd = 3; fd < 1024; ++fd) {
      if (fd != sv[1]) ::close(fd);
    }
    WorkerConfig config = options_.worker;
    // Decorrelate crash injection per (slot, respawn generation): still
    // seed-deterministic, but a respawned worker does not replay its
    // predecessor's roll sequence — otherwise a slot whose first roll
    // crashes would crash the first request of every successor too.
    config.crash.seed +=
        (static_cast<std::uint64_t>(slot.index) +
         (static_cast<std::uint64_t>(slot.spawn_count) << 8)) *
        0x9e3779b97f4a7c15ULL;
    FdStream stream(sv[1], sv[1], true);
    // _exit, never exit: no parent atexit handlers, no static dtors,
    // and sanitizer end-of-process checks stay with the parent.
    ::_exit(worker_loop(stream, config));
  }

  ::close(sv[1]);
  slot.stream = std::make_unique<FdStream>(sv[0], sv[0], true);
  slot.rx.clear();
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.pid = static_cast<int>(pid);
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.spawned;
    if (slot.ever_spawned) ++stats_.restarts;
  }
  slot.ever_spawned = true;
  if (options_.announce_workers) {
    std::fprintf(stderr, "LERA_WORKER slot=%d pid=%d\n", slot.index,
                 static_cast<int>(pid));
    std::fflush(stderr);
  }
}

bool Supervisor::ensure_worker(Slot& slot, PendingSolve& req) {
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    if (slot.pid > 0) return true;
  }
  if (slot.crash_streak > 0) {
    // The backoff must stay interruptible: a drain or disconnect that
    // withdraws the waiting request cannot be held hostage by the
    // respawn pause (the drain-during-restart accounting contract).
    const double pause = backoff_seconds(slot.crash_streak);
    const bool finished = sleep_unless(pause, [&] {
      {
        std::lock_guard<std::mutex> lock(queue_mutex_);
        if (shutting_down_) return true;
      }
      std::lock_guard<std::mutex> lock(req.mutex_);
      return req.cancelled_;
    });
    if (!finished) return false;
  }
  spawn_worker(slot);
  std::lock_guard<std::mutex> lock(slot.mutex);
  return slot.pid > 0;
}

void Supervisor::retire_worker(Slot& slot, bool kill_hard) {
  int pid;
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    pid = slot.pid;
    slot.pid = 0;
  }
  slot.stream.reset();  // Closes the socket; an idle worker exits 0.
  slot.rx.clear();
  if (pid <= 0) return;
  if (kill_hard) ::kill(pid, SIGKILL);
  // Give an orderly worker a moment to notice EOF; then insist.
  int status = 0;
  for (int i = 0; i < 50; ++i) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid || (reaped < 0 && errno == ECHILD)) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ::kill(pid, SIGKILL);
  ::waitpid(pid, &status, 0);
}

std::string Supervisor::record_crash(PendingSolve& req) {
  int count;
  bool newly_quarantined = false;
  {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    count = ++crash_counts_[req.fingerprint_];
    if (count >= options_.poison_threshold &&
        quarantined_.insert(req.fingerprint_).second) {
      newly_quarantined = true;
    }
  }

  bool corpus_written = false;
  std::string corpus_name;
  if (!options_.crash_dir.empty()) {
    // The reproducer is the payload byte-for-byte: exactly what the
    // worker that died was fed, loadable because the server parsed it
    // before dispatch.
    corpus_name = "crash-" + fingerprint_hex(req.fingerprint_) + "-" +
                  std::to_string(count) + ".lt";
    const std::string path = options_.crash_dir + "/" + corpus_name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (out) {
      out.write(req.payload_.data(),
                static_cast<std::streamsize>(req.payload_.size()));
      corpus_written = static_cast<bool>(out.flush());
    }
  }

  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.crashes;
    if (corpus_written) ++stats_.corpus_files;
    if (newly_quarantined) ++stats_.quarantined_fingerprints;
  }

  std::string detail =
      "fingerprint " + fingerprint_hex(req.fingerprint_) + " crash " +
      std::to_string(count) + "/" +
      std::to_string(options_.poison_threshold);
  if (corpus_written) detail += " corpus=" + corpus_name;
  if (newly_quarantined) detail += " quarantined";
  return detail;
}

void Supervisor::on_worker_crash(Slot& slot, PendingSolve& req,
                                 const std::string& how) {
  {
    std::lock_guard<std::mutex> lock(slot.mutex);
    slot.pid = 0;
  }
  slot.stream.reset();
  slot.rx.clear();  // A torn partial verdict line dies with the worker.
  ++slot.crash_streak;
  const std::string poison = record_crash(req);
  req.resolve(WorkerVerdictKind::kWorkerCrashed, "",
              "worker died (" + how + "); " + poison);
}

void Supervisor::serve_one(Slot& slot, PendingSolve& req) {
  // Quarantine recheck at dispatch time: the fingerprint may have
  // crossed the poison threshold while this request sat in the queue
  // behind the very crashes that crossed it. Catching it here spares a
  // worker instead of burning one on a known-poison payload.
  {
    std::lock_guard<std::mutex> lock(poison_mutex_);
    if (quarantined_.count(req.fingerprint_) != 0) {
      const int count = crash_counts_[req.fingerprint_];
      {
        std::lock_guard<std::mutex> stats_lock(stats_mutex_);
        ++stats_.quarantine_rejects;
      }
      req.resolve(
          WorkerVerdictKind::kQuarantined, "",
          "payload fingerprint " + fingerprint_hex(req.fingerprint_) +
              " crashed " + std::to_string(count) +
              " worker(s) and is quarantined");
      return;
    }
  }

  // Died-idle tolerance: a frame write that fails means the worker
  // never saw this payload (it died on earlier work or at rest), so a
  // fresh worker deserves one retry before the request is blamed.
  const std::string wire = [&] {
    Frame frame;
    frame.verb = FrameVerb::kSolve;
    frame.id = req.id_;
    frame.deadline_ms = req.deadline_ms_;
    frame.payload = req.payload_;
    return encode_frame(frame);
  }();

  bool written = false;
  for (int attempt = 0; attempt < 2 && !written; ++attempt) {
    if (!ensure_worker(slot, req)) {
      req.resolve(WorkerVerdictKind::kCancelled, "",
                  "request withdrawn before dispatch");
      return;
    }
    if (!slot.stream || !slot.stream->write(wire)) {
      int pid;
      {
        std::lock_guard<std::mutex> lock(slot.mutex);
        pid = slot.pid;
        slot.pid = 0;
      }
      slot.stream.reset();
      slot.rx.clear();
      int status = 0;
      if (pid > 0) ::waitpid(pid, &status, 0);
      if (attempt == 1) {
        on_worker_crash(slot, req, pid > 0 ? describe_exit(status)
                                           : "no worker available");
        return;
      }
    } else {
      written = true;
    }
  }

  // The hang watchdog only arms when the request carries a deadline:
  // an open-ended request is allowed to run as long as it needs.
  netflow::Deadline hang_deadline;
  if (req.deadline_ms_ > 0 && options_.hang_grace_seconds > 0) {
    hang_deadline = netflow::Deadline::after(
        static_cast<double>(req.deadline_ms_) / 1000.0 +
        options_.hang_grace_seconds);
  }

  char buffer[4096];
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (shutting_down_) {
        retire_worker(slot, /*kill_hard=*/true);
        req.resolve(WorkerVerdictKind::kCancelled, "",
                    "supervisor shut down");
        return;
      }
    }
    {
      // Mid-solve withdrawal (client gone, drain deadline): the worker
      // cannot be interrupted, only replaced.
      std::lock_guard<std::mutex> lock(req.mutex_);
      if (req.cancelled_) break;
    }
    if (drain_expired()) break;

    const std::ptrdiff_t n = slot.stream->read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) {
      if (!hang_deadline.unlimited() && hang_deadline.expired()) {
        int pid;
        {
          std::lock_guard<std::mutex> lock(slot.mutex);
          pid = slot.pid;
        }
        if (pid > 0) ::kill(pid, SIGKILL);
        int status = 0;
        if (pid > 0) ::waitpid(pid, &status, 0);
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++stats_.hung_kills;
        }
        on_worker_crash(slot, req,
                        "hung past deadline+" +
                            std::to_string(options_.hang_grace_seconds) +
                            "s; killed");
        return;
      }
      continue;
    }
    if (n <= 0) {
      int pid;
      {
        std::lock_guard<std::mutex> lock(slot.mutex);
        pid = slot.pid;
      }
      int status = 0;
      if (pid > 0) ::waitpid(pid, &status, 0);
      on_worker_crash(slot, req,
                      pid > 0 ? describe_exit(status) : "stream closed");
      return;
    }

    slot.rx.append(buffer, static_cast<std::size_t>(n));
    const std::size_t eol = slot.rx.find('\n');
    if (eol != std::string::npos) {
      std::string line = slot.rx.substr(0, eol + 1);
      // Strictly one verdict line per request; anything after it would
      // be protocol corruption, not data for the next request.
      slot.rx.clear();
      slot.crash_streak = 0;
      req.resolve(WorkerVerdictKind::kLine, std::move(line), "");
      return;
    }
  }

  // Withdrawn (cancel or drain expiry) while the worker was mid-solve:
  // replace the worker, type the request as cancelled. Not a crash —
  // no poison count, no corpus entry, no backoff penalty.
  retire_worker(slot, /*kill_hard=*/true);
  req.resolve(WorkerVerdictKind::kCancelled, "",
              "request withdrawn while solving in worker");
}

void Supervisor::slot_main(Slot& slot) {
  // Writing a frame to a worker that just crashed raises SIGPIPE, which
  // is delivered to this thread. Block it here (thread-local, no
  // process-wide disposition change for embedders) so the write fails
  // with EPIPE and the crash is typed instead of killing the daemon.
  sigset_t pipe_set;
  sigemptyset(&pipe_set);
  sigaddset(&pipe_set, SIGPIPE);
  pthread_sigmask(SIG_BLOCK, &pipe_set, nullptr);
  for (;;) {
    std::shared_ptr<PendingSolve> req = next_request();
    if (!req) break;
    {
      std::lock_guard<std::mutex> lock(req->mutex_);
      if (req->done_) continue;  // Cancelled while queued.
      req->claimed_ = true;
    }
    if (drain_expired()) {
      req->resolve(WorkerVerdictKind::kCancelled, "",
                   "drain deadline passed before dispatch");
      continue;
    }
    serve_one(slot, *req);
  }
  retire_worker(slot, /*kill_hard=*/false);
}

}  // namespace lera::server
