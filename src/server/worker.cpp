#include "server/worker.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "server/framing.hpp"
#include "workloads/problem_io.hpp"

namespace lera::server {

namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

}  // namespace

std::string sanitize_detail(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ';';
  }
  return text;
}

std::string reject_line(const std::string& id, RejectReason reason,
                        const std::string& detail) {
  std::string line = "LERA_REJECT " + id + " reason=" + to_string(reason);
  if (!detail.empty()) line += " detail=" + sanitize_detail(detail);
  line += "\n";
  return line;
}

Terminal classify_result(const alloc::AllocationResult& r) {
  if (r.cancelled) return Terminal::kCancelled;
  if (!r.feasible && r.timed_out) return Terminal::kTimedOut;
  if (!r.feasible) return Terminal::kInfeasible;
  if (r.degraded) return Terminal::kDegraded;
  return Terminal::kServed;
}

std::string format_verdict_line(const std::string& id,
                                const alloc::AllocationResult& r,
                                Terminal terminal, double latency_ms,
                                bool echo_assignment, bool static_model) {
  std::ostringstream os;
  switch (terminal) {
    case Terminal::kServed:
    case Terminal::kDegraded:
    case Terminal::kCacheHit: {
      const double energy = static_model ? r.static_energy.total()
                                         : r.activity_energy.total();
      os << "LERA_RESULT " << id << " status="
         << (terminal == Terminal::kDegraded ? "degraded" : "ok")
         << " energy=" << energy
         << " mem_accesses=" << r.stats.mem_accesses()
         << " reg_accesses=" << r.stats.reg_accesses()
         << " mem_locations=" << r.stats.mem_locations
         << " registers_used=" << r.registers_used << " solver="
         << (r.degraded
                 ? std::string("two-phase-baseline")
                 : netflow::to_string(r.solve_diagnostics.solver_used))
         << " timed_out=" << (r.timed_out ? 1 : 0);
      // `cached=1` appears only on cache hits, which only exist in
      // cache-enabled mode — cache-off output is untouched.
      if (terminal == Terminal::kCacheHit) os << " cached=1";
      os << " latency_ms=" << latency_ms;
      if (echo_assignment) {
        os << " assign=";
        if (r.assignment.size() == 0) {
          os << "-";
        } else {
          for (std::size_t s = 0; s < r.assignment.size(); ++s) {
            if (s > 0) os << ",";
            if (r.assignment.in_register(s)) {
              os << "r" << r.assignment.location(s);
            } else {
              os << "mem";
            }
          }
        }
      }
      os << "\n";
      break;
    }
    case Terminal::kInfeasible:
      os << "LERA_ERROR " << id << " "
         << sanitize_detail(r.message.empty() ? "allocation infeasible"
                                              : r.message)
         << "\n";
      break;
    case Terminal::kTimedOut:
      os << "LERA_TIMEOUT " << id << " "
         << sanitize_detail(r.message.empty()
                                ? "deadline expired with no usable answer"
                                : r.message)
         << "\n";
      break;
    case Terminal::kCancelled:
      os << "LERA_CANCELLED " << id << " "
         << sanitize_detail(r.message.empty() ? "request withdrawn"
                                              : r.message)
         << "\n";
      break;
  }
  return os.str();
}

std::uint64_t payload_fingerprint(const std::string& payload) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : payload) {
    h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return h;
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kDigits[fingerprint & 0xF];
    fingerprint >>= 4;
  }
  return out;
}

int worker_loop(ByteStream& stream, const WorkerConfig& config) {
  engine::EngineOptions engine_options = config.engine;
  // A forked child must never depend on parent threads, and one request
  // at a time needs no pool: strictly sequential solving on this thread.
  engine_options.threads = 1;
  engine_options.alloc.fallback_to_baseline = true;
  engine::Engine engine(engine_options);
  const bool static_model = engine_options.params.register_model ==
                            energy::RegisterModel::kStatic;
  netflow::CrashFailpoint failpoint(config.crash);

  const auto answer = [&](const Frame& frame) {
    const std::string id = frame.id.empty() ? std::string("#w") : frame.id;
    if (frame.verb != FrameVerb::kSolve) {
      // The supervisor only dispatches SOLVE (plus PING as a liveness
      // probe); answer anything else with PONG so the one-line-per-frame
      // invariant the parent relies on holds unconditionally.
      return stream.write("LERA_PONG " + id + "\n");
    }

    if (failpoint.armed()) {
      if (const std::optional<netflow::CrashFailpoint::Mode> mode =
              failpoint.should_crash(frame.payload)) {
        // Die *mid-response* on the clean-exit mode: a torn partial
        // line is the nastiest crash shape the supervisor must discard.
        if (*mode == netflow::CrashFailpoint::Mode::kExit) {
          stream.write("LERA_RE");
        }
        netflow::CrashFailpoint::crash(*mode, config.crash.exit_code);
      }
    }

    const Clock::time_point started = Clock::now();
    const workloads::ProblemParseResult parsed =
        workloads::parse_problem(frame.payload, engine_options.params);
    if (!parsed.ok()) {
      return stream.write(
          reject_line(id, RejectReason::kBadRequest, parsed.error));
    }

    engine::Session session = engine.open_session();
    const std::size_t ticket = session.submit(
        std::move(*parsed.problem),
        frame.deadline_ms > 0 ? frame.deadline_ms / 1000.0 : 0.0);
    while (!session.wait_for(ticket, 0.25)) {
    }
    const alloc::AllocationResult& r = session.result(ticket);
    return stream.write(format_verdict_line(
        id, r, classify_result(r), ms_since(started),
        config.echo_assignment, static_model));
  };

  FrameDecoder decoder;
  char buffer[4096];
  for (;;) {
    const std::ptrdiff_t n = stream.read(buffer, sizeof buffer);
    if (n == ByteStream::kReadAgain) continue;
    if (n <= 0) break;  // Supervisor closed its end: orderly retirement.
    for (FrameEvent& event :
         decoder.feed({buffer, static_cast<std::size_t>(n)})) {
      if (!event.ok) {
        const RejectReason reason =
            event.error == FrameError::kFrameTooLarge
                ? RejectReason::kFrameTooLarge
                : RejectReason::kBadFrame;
        const std::string id =
            event.id.empty() ? std::string("#w") : event.id;
        if (!stream.write(reject_line(id, reason, event.detail))) {
          return 0;
        }
        continue;
      }
      if (!answer(event.frame)) return 0;  // Parent gone mid-write.
    }
  }
  return 0;
}

}  // namespace lera::server
