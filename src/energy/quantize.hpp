#pragma once

#include <cassert>
#include <cmath>

#include "netflow/types.hpp"

/// \file quantize.hpp
/// Fixed-point quantisation of real-valued energies into integer flow
/// costs. Integral costs are what lets the min-cost-flow integrality
/// theorem deliver 0/1 flows (and therefore a valid allocation) exactly.

namespace lera::energy {

class Quantizer {
 public:
  Quantizer() = default;

  /// \p resolution: energy units per integer cost tick. The default
  /// (1e-6 add-units) is far below any meaningful energy difference yet
  /// keeps worst-case costs ~1e9, well inside solver headroom.
  explicit Quantizer(double resolution) : resolution_(resolution) {
    assert(resolution > 0);
  }

  /// Quantises \p energy to integer ticks, saturating at +/-kInfCost so
  /// that out-of-range energies (or NaN, mapped to +kInfCost) produce a
  /// valid — and certifiably suspicious — flow cost instead of the UB of
  /// an overflowing llround cast.
  netflow::Cost quantize(double energy) const {
    const double ticks = energy / resolution_;
    if (!(std::abs(ticks) < static_cast<double>(netflow::kInfCost))) {
      return ticks < 0 ? -netflow::kInfCost : netflow::kInfCost;
    }
    return netflow::saturate_cost(
        static_cast<netflow::Cost>(std::llround(ticks)));
  }

  double dequantize(netflow::Cost ticks) const {
    return static_cast<double>(ticks) * resolution_;
  }

  double resolution() const { return resolution_; }

 private:
  double resolution_ = 1e-6;
};

}  // namespace lera::energy
