#pragma once

#include <cassert>
#include <cmath>

#include "netflow/types.hpp"

/// \file quantize.hpp
/// Fixed-point quantisation of real-valued energies into integer flow
/// costs. Integral costs are what lets the min-cost-flow integrality
/// theorem deliver 0/1 flows (and therefore a valid allocation) exactly.

namespace lera::energy {

class Quantizer {
 public:
  Quantizer() = default;

  /// \p resolution: energy units per integer cost tick. The default
  /// (1e-6 add-units) is far below any meaningful energy difference yet
  /// keeps worst-case costs ~1e9, well inside solver headroom.
  explicit Quantizer(double resolution) : resolution_(resolution) {
    assert(resolution > 0);
  }

  netflow::Cost quantize(double energy) const {
    const double ticks = energy / resolution_;
    assert(std::abs(ticks) < 9.0e15 && "energy too large to quantise");
    return static_cast<netflow::Cost>(std::llround(ticks));
  }

  double dequantize(netflow::Cost ticks) const {
    return static_cast<double>(ticks) * resolution_;
  }

  double resolution() const { return resolution_; }

 private:
  double resolution_ = 1e-6;
};

}  // namespace lera::energy
