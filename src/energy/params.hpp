#pragma once

/// \file params.hpp
/// Storage-energy parameters (paper §3). All per-access energies are in
/// "16-bit-add units" at the nominal supply voltage, following the ratios
/// the paper quotes from [14]: on-chip memory read = 5, memory write =
/// 10, off-chip transfer = 11, with register-file accesses around one add
/// (the 16x16 register file switches far less capacitance than the
/// 256x16 SRAM of [3]). Energies scale with the square of the supply
/// voltage (E = C*V^2), which is how the restricted-access-time rows of
/// Table 1 trade frequency for energy.

namespace lera::energy {

/// Which of the paper's two models (eq. 1 vs eq. 2) prices the register
/// file. Memory is always priced statically; pricing memory by activity
/// too would need a two-commodity flow, which the paper proves out of
/// reach (NP-complete, §7).
enum class RegisterModel {
  kStatic,    ///< Eq. (1): fixed read/write energies.
  kActivity,  ///< Eq. (2): Hamming distance x switched capacitance.
};

struct EnergyParams {
  // Per-access energies at nominal voltage (add units).
  double mem_read = 5.0;
  double mem_write = 10.0;
  double reg_read = 1.0;
  double reg_write = 1.0;
  /// Activity model: energy of flipping *all* bits of a register
  /// (C_rw^r * Vnom^2 in the paper's notation); an actual transition
  /// v1 -> v2 costs hamming_fraction(v1, v2) * reg_full_swing.
  double reg_full_swing = 2.0;
  /// Full-swing energy of a memory cell rewrite; used by the second-stage
  /// memory reallocation flow (§5: "reallocate memory using an activity
  /// based energy model"). Larger than reg_full_swing because the SRAM
  /// bit lines switch far more capacitance than a register cell.
  double mem_full_swing = 8.0;

  // Supply voltages. Scaling a component's voltage scales its energies
  // by (v / v_nominal)^2.
  double v_nominal = 5.0;
  double v_mem = 5.0;
  double v_reg = 5.0;

  RegisterModel register_model = RegisterModel::kStatic;

  double mem_scale() const {
    const double r = v_mem / v_nominal;
    return r * r;
  }
  double reg_scale() const {
    const double r = v_reg / v_nominal;
    return r * r;
  }

  // Voltage-scaled per-access energies.
  double e_mem_read() const { return mem_read * mem_scale(); }
  double e_mem_write() const { return mem_write * mem_scale(); }
  double e_reg_read() const { return reg_read * reg_scale(); }
  double e_reg_write() const { return reg_write * reg_scale(); }
  /// Activity-model register energy for a transition with Hamming
  /// fraction \p h in [0, 1].
  double e_reg_transition(double h) const {
    return h * reg_full_swing * reg_scale();
  }
  /// Activity-model energy of writing a value over another in a memory
  /// location (second-stage memory reallocation).
  double e_mem_transition(double h) const {
    return h * mem_full_swing * mem_scale();
  }
};

}  // namespace lera::energy
