#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

/// \file activity.hpp
/// Switching activities H(v1, v2) between data variables (paper §3).
/// Stored as *fractions* in [0, 1] — the paper's Figures 3 and 4 list
/// them the same way ("number of bits which change over total number of
/// bits"). The activity-based register energy of a transition is
/// H(v1,v2) * C_rw^r * Vr^2 (EnergyParams::e_reg_transition).

namespace lera::energy {

class ActivityMatrix {
 public:
  /// \p n variables, all pairs defaulting to \p default_h; \p initial_h
  /// is the activity of the first value written into an empty register
  /// (the paper assumes 0.5 "at time 0" in Figure 3).
  explicit ActivityMatrix(std::size_t n, double default_h = 0.5,
                          double initial_h = 0.5);

  std::size_t size() const { return n_; }

  double hamming(std::size_t v1, std::size_t v2) const {
    assert(v1 < n_ && v2 < n_);
    return v1 == v2 ? 0.0 : h_[v1 * n_ + v2];
  }

  /// Sets H(v1,v2) = H(v2,v1) = h (bit flips are symmetric).
  void set(std::size_t v1, std::size_t v2, double h);

  double initial(std::size_t v) const {
    assert(v < n_);
    return initial_[v];
  }
  void set_initial(std::size_t v, double h);

  /// True while every pair still holds the constructor's default_h and
  /// every initial the constructor's initial_h — i.e. no set() call has
  /// ever written a different value. Consumers (fingerprinting) may
  /// then summarize the whole matrix as (n, default, initial) instead
  /// of walking O(n^2) entries. Conservative: a matrix rebuilt to the
  /// same values through non-default writes reports false, which only
  /// costs the consumer the long form, never a wrong summary.
  bool is_uniform() const { return uniform_; }
  double uniform_h() const { return default_h_; }
  double uniform_initial() const { return initial_h_; }

  /// Measures activities from a value trace: \p trace[s][i] is variable
  /// i's value in sample s, \p widths[i] its bit width. H(i,j) is the
  /// mean Hamming distance fraction across samples; initial(i) the mean
  /// weight of i's own bits (register assumed cleared beforehand).
  static ActivityMatrix from_trace(
      const std::vector<std::vector<std::int64_t>>& trace,
      const std::vector<int>& widths);

 private:
  std::size_t n_;
  double default_h_;
  double initial_h_;
  bool uniform_ = true;
  std::vector<double> h_;
  std::vector<double> initial_;
};

/// Hamming distance between the low \p width bits of two words, as a
/// fraction of \p width.
double hamming_fraction(std::int64_t a, std::int64_t b, int width);

}  // namespace lera::energy
