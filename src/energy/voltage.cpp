#include "energy/voltage.hpp"

#include <cassert>
#include <cmath>

namespace lera::energy {

double VoltageModel::relative_delay(double v) const {
  assert(v > v_t);
  const double nominal =
      v_nominal / std::pow(v_nominal - v_t, alpha);
  return (v / std::pow(v - v_t, alpha)) / nominal;
}

double voltage_for_slowdown(double slowdown, const VoltageModel& model) {
  assert(slowdown >= 1.0);
  if (slowdown == 1.0) return model.v_nominal;
  // relative_delay is monotonically decreasing in v on (v_t, v_nominal],
  // so bisect for relative_delay(v) == slowdown.
  double lo = std::max(model.v_min, model.v_t + 1e-6);
  double hi = model.v_nominal;
  if (model.relative_delay(lo) <= slowdown) return lo;  // Clamp at v_min.
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (model.relative_delay(mid) > slowdown) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return hi;
}

double energy_scale(double v, double v_nominal) {
  const double r = v / v_nominal;
  return r * r;
}

}  // namespace lera::energy
