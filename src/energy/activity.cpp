#include "energy/activity.hpp"

#include <bit>

namespace lera::energy {

ActivityMatrix::ActivityMatrix(std::size_t n, double default_h,
                               double initial_h)
    : n_(n),
      default_h_(default_h),
      initial_h_(initial_h),
      h_(n * n, default_h),
      initial_(n, initial_h) {
  assert(default_h >= 0 && default_h <= 1);
  assert(initial_h >= 0 && initial_h <= 1);
}

void ActivityMatrix::set(std::size_t v1, std::size_t v2, double h) {
  assert(v1 < n_ && v2 < n_);
  assert(h >= 0 && h <= 1);
  if (h != default_h_) uniform_ = false;
  h_[v1 * n_ + v2] = h;
  h_[v2 * n_ + v1] = h;
}

void ActivityMatrix::set_initial(std::size_t v, double h) {
  assert(v < n_);
  assert(h >= 0 && h <= 1);
  if (h != initial_h_) uniform_ = false;
  initial_[v] = h;
}

double hamming_fraction(std::int64_t a, std::int64_t b, int width) {
  assert(width > 0 && width <= 64);
  const std::uint64_t mask =
      width == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << width) - 1;
  const std::uint64_t diff =
      (static_cast<std::uint64_t>(a) ^ static_cast<std::uint64_t>(b)) & mask;
  return static_cast<double>(std::popcount(diff)) / width;
}

ActivityMatrix ActivityMatrix::from_trace(
    const std::vector<std::vector<std::int64_t>>& trace,
    const std::vector<int>& widths) {
  const std::size_t n = widths.size();
  ActivityMatrix m(n, 0.5, 0.5);
  if (trace.empty() || n == 0) return m;

  for (std::size_t i = 0; i < n; ++i) {
    double own = 0;
    for (const auto& sample : trace) {
      assert(sample.size() == n);
      own += hamming_fraction(sample[i], 0, widths[i]);
    }
    m.set_initial(i, own / static_cast<double>(trace.size()));
    for (std::size_t j = i + 1; j < n; ++j) {
      const int width = std::max(widths[i], widths[j]);
      double acc = 0;
      for (const auto& sample : trace) {
        acc += hamming_fraction(sample[i], sample[j], width);
      }
      m.set(i, j, acc / static_cast<double>(trace.size()));
    }
  }
  return m;
}

}  // namespace lera::energy
