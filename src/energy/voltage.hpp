#pragma once

/// \file voltage.hpp
/// Voltage scaling support (paper §2, §5.2 and Table 1). Lowering a
/// memory module's supply voltage saves energy quadratically but slows
/// it down; the delay follows the alpha-power law
///     delay(V)  proportional to  V / (V - Vt)^alpha .
/// Table 1 runs the RSP memory at f, f/2 and f/4 with supplies scaled
/// from 5 V towards 2 V; voltage_for_slowdown() reproduces that mapping.

namespace lera::energy {

struct VoltageModel {
  double v_nominal = 5.0;  ///< Full-speed supply.
  double v_min = 1.2;      ///< Lowest usable supply.
  double v_t = 0.8;        ///< Threshold voltage.
  double alpha = 2.0;      ///< Velocity-saturation exponent.

  /// Gate delay at supply \p v relative to delay at v_nominal (>= 1 for
  /// v <= v_nominal).
  double relative_delay(double v) const;
};

/// Smallest supply voltage at which the component still meets a clock
/// slowed down by \p slowdown (slowdown = 1 returns v_nominal, 2 means
/// the module may be twice as slow, ...). Solved by bisection; clamped
/// to [v_min, v_nominal].
double voltage_for_slowdown(double slowdown, const VoltageModel& model = {});

/// Energy ratio (v / v_nominal)^2 of running at supply \p v.
double energy_scale(double v, double v_nominal);

}  // namespace lera::energy
