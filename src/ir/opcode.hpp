#pragma once

#include <string>

/// \file opcode.hpp
/// Operation set of the data-flow-graph IR. The mix mirrors the DSP-style
/// basic blocks the paper targets (radar/video/audio kernels): fixed-point
/// arithmetic, shifts and logic, plus pseudo-ops for I/O boundaries.

namespace lera::ir {

enum class Opcode {
  kInput,   ///< Value produced outside the block (live-in).
  kConst,   ///< Compile-time constant (coefficients, masks).
  kAdd,
  kSub,
  kMul,
  kMac,     ///< Multiply-accumulate: a*b + c.
  kDiv,
  kShl,
  kShr,
  kAnd,
  kOr,
  kXor,
  kNeg,
  kAbs,
  kMin,
  kMax,
  kOutput,  ///< Value consumed outside the block (live-out); no result.
};

/// Number of input operands expected by an opcode.
int arity(Opcode op);

/// Default latency in control steps (single-cycle ALU, two-cycle
/// multiplier/divider — the usual HLS textbook assumption).
int default_latency(Opcode op);

/// True for kInput/kConst, which occupy no functional unit.
bool is_source(Opcode op);

std::string to_string(Opcode op);

}  // namespace lera::ir
