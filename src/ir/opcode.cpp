#include "ir/opcode.hpp"

namespace lera::ir {

int arity(Opcode op) {
  switch (op) {
    case Opcode::kInput:
    case Opcode::kConst:
      return 0;
    case Opcode::kNeg:
    case Opcode::kAbs:
    case Opcode::kOutput:
      return 1;
    case Opcode::kMac:
      return 3;
    default:
      return 2;
  }
}

int default_latency(Opcode op) {
  switch (op) {
    case Opcode::kInput:
    case Opcode::kConst:
    case Opcode::kOutput:
      return 0;
    case Opcode::kMul:
    case Opcode::kMac:
      return 2;
    case Opcode::kDiv:
      return 4;
    default:
      return 1;
  }
}

bool is_source(Opcode op) {
  return op == Opcode::kInput || op == Opcode::kConst;
}

std::string to_string(Opcode op) {
  switch (op) {
    case Opcode::kInput: return "input";
    case Opcode::kConst: return "const";
    case Opcode::kAdd: return "add";
    case Opcode::kSub: return "sub";
    case Opcode::kMul: return "mul";
    case Opcode::kMac: return "mac";
    case Opcode::kDiv: return "div";
    case Opcode::kShl: return "shl";
    case Opcode::kShr: return "shr";
    case Opcode::kAnd: return "and";
    case Opcode::kOr: return "or";
    case Opcode::kXor: return "xor";
    case Opcode::kNeg: return "neg";
    case Opcode::kAbs: return "abs";
    case Opcode::kMin: return "min";
    case Opcode::kMax: return "max";
    case Opcode::kOutput: return "output";
  }
  return "?";
}

}  // namespace lera::ir
