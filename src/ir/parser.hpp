#pragma once

#include <optional>
#include <string>

#include "ir/basic_block.hpp"

/// \file parser.hpp
/// Tiny textual front end for basic blocks, so allocation problems can
/// be written down instead of constructed by API calls. Grammar (one
/// statement per line, '#' starts a comment):
///
///   in  x, y, z          declare live-in values
///   const k = 42         declare a constant
///   t = a + b            infix binary ops: + - * / % << >> & | ^
///   t = add a, b         mnemonic form, any opcode: add sub mul mac
///                        div shl shr and or xor neg abs min max
///   out t                mark t live-out
///
/// Identifiers are [A-Za-z_][A-Za-z0-9_]*. Every value must be defined
/// before use; redefinition is an error (blocks are SSA).

namespace lera::ir {

struct ParseResult {
  std::optional<BasicBlock> block;
  std::string error;  ///< "line N: message" when block is empty.

  bool ok() const { return block.has_value(); }
};

ParseResult parse_block(const std::string& text, std::string name = "bb");

/// Serialises \p bb in the grammar above (mnemonic form), so blocks
/// round-trip through parse_block. Names are sanitised to identifiers
/// (non-alphanumeric characters become '_'); blocks with duplicate
/// value names cannot round-trip (SSA makes generated names unique).
std::string to_text(const BasicBlock& bb);

}  // namespace lera::ir
