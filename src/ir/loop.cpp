#include "ir/loop.hpp"

#include <algorithm>
#include <map>
#include <sstream>

namespace lera::ir {

std::string LoopKernel::verify() const {
  std::ostringstream os;
  const std::string body_issues = body.verify();
  if (!body_issues.empty()) os << "body: " << body_issues;

  auto is_input = [&](ValueId v) {
    return v >= 0 && static_cast<std::size_t>(v) < body.num_values() &&
           body.op(body.value(v).def).opcode == Opcode::kInput;
  };
  std::map<ValueId, int> target_seen;
  for (const auto& [src, dst] : carried) {
    if (src < 0 || static_cast<std::size_t>(src) >= body.num_values()) {
      os << "carried source " << src << " is not a body value; ";
    }
    if (!is_input(dst)) {
      os << "carried target " << dst << " is not a body input; ";
    }
    if (++target_seen[dst] > 1) {
      os << "input " << dst << " receives two carried values; ";
    }
  }
  for (ValueId v : invariant_inputs) {
    if (!is_input(v)) {
      os << "invariant " << v << " is not a body input; ";
    }
    if (target_seen.count(v) != 0) {
      os << "input " << v << " is both carried and invariant; ";
    }
  }
  return os.str();
}

BasicBlock unroll(const LoopKernel& kernel, int factor) {
  assert(factor >= 1);
  assert(kernel.verify().empty());
  const BasicBlock& body = kernel.body;
  BasicBlock out(body.name() + "_x" + std::to_string(factor));

  std::map<ValueId, ValueId> carried_source_of;  // input <- body source
  for (const auto& [src, dst] : kernel.carried) {
    carried_source_of[dst] = src;
  }
  auto is_invariant = [&](ValueId v) {
    return std::find(kernel.invariant_inputs.begin(),
                     kernel.invariant_inputs.end(),
                     v) != kernel.invariant_inputs.end();
  };

  // map[k][old value id] = new value id for iteration k.
  std::vector<std::map<ValueId, ValueId>> map(
      static_cast<std::size_t>(factor));

  for (int k = 0; k < factor; ++k) {
    auto& env = map[static_cast<std::size_t>(k)];
    const std::string suffix = "@" + std::to_string(k);
    for (const Operation& op : body.ops()) {
      switch (op.opcode) {
        case Opcode::kInput: {
          const ValueId v = op.result;
          const Value& value = body.value(v);
          const auto carried = carried_source_of.find(v);
          if (carried != carried_source_of.end() && k > 0) {
            // Fed by last iteration's source value: no new op.
            env[v] = map[static_cast<std::size_t>(k - 1)].at(
                carried->second);
          } else if (is_invariant(v) && k > 0) {
            env[v] = map[0].at(v);
          } else {
            env[v] = out.input(value.name + (k == 0 || is_invariant(v)
                                                 ? std::string{}
                                                 : suffix),
                               value.width);
          }
          break;
        }
        case Opcode::kConst: {
          if (k == 0) {
            const Value& value = body.value(op.result);
            env[op.result] =
                out.constant(value.literal, value.name, value.width);
          } else {
            env[op.result] = map[0].at(op.result);
          }
          break;
        }
        case Opcode::kOutput: {
          out.output(env.at(op.operands[0]));
          break;
        }
        default: {
          std::vector<ValueId> operands;
          operands.reserve(op.operands.size());
          for (ValueId operand : op.operands) {
            operands.push_back(env.at(operand));
          }
          const Value& value = body.value(op.result);
          env[op.result] = out.emit(op.opcode, operands,
                                    value.name + suffix, value.width);
          break;
        }
      }
    }
  }

  // The last iteration's carried sources feed the next loop execution.
  for (const auto& [src, dst] : kernel.carried) {
    (void)dst;
    out.output(map.back().at(src));
  }
  assert(out.verify().empty());
  return out;
}

}  // namespace lera::ir
