#pragma once

#include <cstdint>
#include <vector>

#include "ir/basic_block.hpp"

/// \file eval.hpp
/// Bit-accurate interpreter for basic blocks. The activity-based energy
/// model needs Hamming distances between the data values that share a
/// register; this evaluator produces per-value integer traces from input
/// vectors so those distances can be *measured* instead of guessed.

namespace lera::ir {

/// Evaluates \p bb once. \p inputs supplies one integer per kInput
/// operation, in emission order. Returns one value per ValueId, reduced
/// modulo each value's bit width (two's-complement wraparound).
std::vector<std::int64_t> evaluate(const BasicBlock& bb,
                                   const std::vector<std::int64_t>& inputs);

/// Evaluates \p bb over many input vectors; result[s][v] is value v in
/// sample s.
std::vector<std::vector<std::int64_t>> evaluate_trace(
    const BasicBlock& bb,
    const std::vector<std::vector<std::int64_t>>& input_samples);

/// Applies one operation to already-evaluated operands, reducing the
/// result to \p width bits (two's complement). Shared by the IR
/// interpreter and the codegen machine model so both agree bit-exactly.
std::int64_t apply_opcode(Opcode opcode,
                          const std::vector<std::int64_t>& operands,
                          int width);

}  // namespace lera::ir
