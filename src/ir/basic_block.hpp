#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/opcode.hpp"

/// \file basic_block.hpp
/// SSA-style basic block: the "partially ordered list of code operations"
/// of the paper's Problem 1. Values are defined exactly once; operations
/// are stored in a valid topological order (enforced by the builder API,
/// which only lets an operation consume already-defined values).

namespace lera::ir {

using ValueId = std::int32_t;
using OpId = std::int32_t;

inline constexpr ValueId kNoValue = -1;

/// A data variable of the paper: one definition, one or more uses.
struct Value {
  ValueId id = kNoValue;
  std::string name;
  int width = 16;            ///< Bit width (paper's examples are 16-bit).
  OpId def = -1;             ///< Operation defining this value.
  std::vector<OpId> uses;    ///< Operations reading this value.
  std::int64_t literal = 0;  ///< Constant payload when def is a kConst.
};

/// One operation of the block.
struct Operation {
  OpId id = -1;
  Opcode opcode = Opcode::kAdd;
  std::vector<ValueId> operands;
  ValueId result = kNoValue;  ///< kNoValue for kOutput.
};

/// Owning container + builder for a basic block.
class BasicBlock {
 public:
  explicit BasicBlock(std::string name = "bb") : name_(std::move(name)) {}

  /// Live-in value (defined before the block).
  ValueId input(std::string name, int width = 16);

  /// Constant value (coefficients etc.).
  ValueId constant(std::int64_t literal, std::string name = {},
                   int width = 16);

  /// Appends an operation computing a fresh value from \p operands; the
  /// operands must already be defined. Returns the result value.
  ValueId emit(Opcode opcode, const std::vector<ValueId>& operands,
               std::string result_name = {}, int width = 16);

  /// Marks \p v as live-out (read after the block by another task).
  void output(ValueId v);

  const std::string& name() const { return name_; }

  std::size_t num_values() const { return values_.size(); }
  std::size_t num_ops() const { return ops_.size(); }

  const Value& value(ValueId v) const {
    assert(v >= 0 && static_cast<std::size_t>(v) < values_.size());
    return values_[static_cast<std::size_t>(v)];
  }
  const Operation& op(OpId o) const {
    assert(o >= 0 && static_cast<std::size_t>(o) < ops_.size());
    return ops_[static_cast<std::size_t>(o)];
  }
  const std::vector<Value>& values() const { return values_; }
  const std::vector<Operation>& ops() const { return ops_; }

  /// Operations that must precede \p o (defs of its operands, excluding
  /// source pseudo-ops which take no schedule slot).
  std::vector<OpId> predecessors(OpId o) const;

  /// Checks structural invariants (operand defined-before-use, arities,
  /// single definition). Returns an empty string when consistent.
  std::string verify() const;

 private:
  ValueId new_value(std::string name, int width);

  std::string name_;
  std::vector<Value> values_;
  std::vector<Operation> ops_;
  int anon_counter_ = 0;
};

}  // namespace lera::ir
