#include "ir/task_graph.hpp"

#include <numeric>

namespace lera::ir {

TaskId TaskGraph::add_task(std::string name, BasicBlock block,
                           std::vector<TaskId> deps) {
  const TaskId id = static_cast<TaskId>(tasks_.size());
  for ([[maybe_unused]] TaskId d : deps) {
    assert(d >= 0 && d < id && "dependencies must reference earlier tasks");
  }
  Task t;
  t.id = id;
  t.name = std::move(name);
  t.block = std::move(block);
  t.deps = std::move(deps);
  tasks_.push_back(std::move(t));
  return id;
}

std::vector<TaskId> TaskGraph::topological_order() const {
  std::vector<TaskId> order(tasks_.size());
  std::iota(order.begin(), order.end(), 0);
  return order;
}

}  // namespace lera::ir
