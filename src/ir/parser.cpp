#include "ir/parser.hpp"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

namespace lera::ir {

namespace {

/// Splits a line into identifier / number / operator tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::size_t i = 0;
  while (i < line.size()) {
    const char c = line[i];
    if (c == '#') break;  // Comment to end of line.
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i;
      while (j < line.size() &&
             (std::isalnum(static_cast<unsigned char>(line[j])) ||
              line[j] == '_')) {
        ++j;
      }
      tokens.push_back(line.substr(i, j - i));
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < line.size() &&
         std::isdigit(static_cast<unsigned char>(line[i + 1])) &&
         !tokens.empty() && tokens.back() == "=")) {
      std::size_t j = i + 1;
      while (j < line.size() &&
             std::isdigit(static_cast<unsigned char>(line[j]))) {
        ++j;
      }
      tokens.push_back(line.substr(i, j - i));
      i = j;
      continue;
    }
    // Two-character operators first.
    if (i + 1 < line.size()) {
      const std::string two = line.substr(i, 2);
      if (two == "<<" || two == ">>") {
        tokens.push_back(two);
        i += 2;
        continue;
      }
    }
    tokens.push_back(std::string(1, c));
    ++i;
  }
  return tokens;
}

std::optional<Opcode> mnemonic(const std::string& s) {
  static const std::map<std::string, Opcode> table = {
      {"add", Opcode::kAdd}, {"sub", Opcode::kSub}, {"mul", Opcode::kMul},
      {"mac", Opcode::kMac}, {"div", Opcode::kDiv}, {"shl", Opcode::kShl},
      {"shr", Opcode::kShr}, {"and", Opcode::kAnd}, {"or", Opcode::kOr},
      {"xor", Opcode::kXor}, {"neg", Opcode::kNeg}, {"abs", Opcode::kAbs},
      {"min", Opcode::kMin}, {"max", Opcode::kMax},
  };
  const auto it = table.find(s);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::optional<Opcode> infix(const std::string& s) {
  static const std::map<std::string, Opcode> table = {
      {"+", Opcode::kAdd},  {"-", Opcode::kSub}, {"*", Opcode::kMul},
      {"/", Opcode::kDiv},  {"<<", Opcode::kShl}, {">>", Opcode::kShr},
      {"&", Opcode::kAnd},  {"|", Opcode::kOr},  {"^", Opcode::kXor},
  };
  const auto it = table.find(s);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

bool is_identifier(const std::string& s) {
  if (s.empty()) return false;
  if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_') {
    return false;
  }
  return true;
}

}  // namespace

ParseResult parse_block(const std::string& text, std::string name) {
  BasicBlock bb(std::move(name));
  std::map<std::string, ValueId> env;

  auto fail = [](int line_no, const std::string& message) {
    ParseResult r;
    r.error = "line " + std::to_string(line_no) + ": " + message;
    return r;
  };
  auto lookup = [&](const std::string& id) -> std::optional<ValueId> {
    const auto it = env.find(id);
    if (it == env.end()) return std::nullopt;
    return it->second;
  };

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> t = tokenize(line);
    if (t.empty()) continue;

    if (t[0] == "in") {
      // in x, y, z
      for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i] == ",") continue;
        if (!is_identifier(t[i])) {
          return fail(line_no, "expected identifier, got '" + t[i] + "'");
        }
        if (env.count(t[i]) != 0) {
          return fail(line_no, "redefinition of '" + t[i] + "'");
        }
        env[t[i]] = bb.input(t[i]);
      }
      continue;
    }

    if (t[0] == "const") {
      // const k = 42
      if (t.size() != 4 || t[2] != "=" || !is_identifier(t[1])) {
        return fail(line_no, "expected 'const <name> = <number>'");
      }
      if (env.count(t[1]) != 0) {
        return fail(line_no, "redefinition of '" + t[1] + "'");
      }
      try {
        env[t[1]] = bb.constant(std::stoll(t[3]), t[1]);
      } catch (...) {
        return fail(line_no, "bad constant literal '" + t[3] + "'");
      }
      continue;
    }

    if (t[0] == "out") {
      // out t
      if (t.size() != 2) return fail(line_no, "expected 'out <name>'");
      const auto v = lookup(t[1]);
      if (!v) return fail(line_no, "unknown value '" + t[1] + "'");
      bb.output(*v);
      continue;
    }

    // Assignment: <dst> = ...
    if (t.size() < 3 || t[1] != "=" || !is_identifier(t[0])) {
      return fail(line_no, "unrecognised statement");
    }
    if (env.count(t[0]) != 0) {
      return fail(line_no, "redefinition of '" + t[0] + "' (blocks are SSA)");
    }

    // Infix binary: dst = a <op> b
    if (t.size() == 5 && infix(t[3])) {
      const auto a = lookup(t[2]);
      const auto b = lookup(t[4]);
      if (!a) return fail(line_no, "unknown value '" + t[2] + "'");
      if (!b) return fail(line_no, "unknown value '" + t[4] + "'");
      env[t[0]] = bb.emit(*infix(t[3]), {*a, *b}, t[0]);
      continue;
    }

    // Mnemonic: dst = op a[, b[, c]]
    const auto op = mnemonic(t[2]);
    if (!op) {
      return fail(line_no, "unknown operation '" + t[2] + "'");
    }
    std::vector<ValueId> operands;
    for (std::size_t i = 3; i < t.size(); ++i) {
      if (t[i] == ",") continue;
      const auto v = lookup(t[i]);
      if (!v) return fail(line_no, "unknown value '" + t[i] + "'");
      operands.push_back(*v);
    }
    if (static_cast<int>(operands.size()) != arity(*op)) {
      return fail(line_no, "'" + t[2] + "' expects " +
                               std::to_string(arity(*op)) + " operands, got " +
                               std::to_string(operands.size()));
    }
    env[t[0]] = bb.emit(*op, operands, t[0]);
  }

  ParseResult result;
  const std::string issues = bb.verify();
  if (!issues.empty()) {
    result.error = "internal: " + issues;
    return result;
  }
  result.block = std::move(bb);
  return result;
}

std::string to_text(const BasicBlock& bb) {
  auto identifier = [](const std::string& name) {
    std::string out = name;
    for (char& c : out) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        c = '_';
      }
    }
    if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
      out.insert(out.begin(), 'v');
    }
    return out;
  };

  std::ostringstream os;
  os << "# " << bb.name() << "\n";
  for (const Operation& op : bb.ops()) {
    switch (op.opcode) {
      case Opcode::kInput:
        os << "in " << identifier(bb.value(op.result).name) << "\n";
        break;
      case Opcode::kConst:
        os << "const " << identifier(bb.value(op.result).name) << " = "
           << bb.value(op.result).literal << "\n";
        break;
      case Opcode::kOutput:
        os << "out " << identifier(bb.value(op.operands[0]).name) << "\n";
        break;
      default: {
        os << identifier(bb.value(op.result).name) << " = "
           << to_string(op.opcode);
        for (std::size_t i = 0; i < op.operands.size(); ++i) {
          os << (i ? ", " : " ")
             << identifier(bb.value(op.operands[i]).name);
        }
        os << "\n";
        break;
      }
    }
  }
  return os.str();
}

}  // namespace lera::ir
