#include "ir/basic_block.hpp"

#include <algorithm>

#include <sstream>

namespace lera::ir {

ValueId BasicBlock::new_value(std::string name, int width) {
  if (name.empty()) {
    name = "v" + std::to_string(anon_counter_++);
  }
  Value v;
  v.id = static_cast<ValueId>(values_.size());
  v.name = std::move(name);
  v.width = width;
  values_.push_back(std::move(v));
  return values_.back().id;
}

ValueId BasicBlock::input(std::string name, int width) {
  const ValueId v = new_value(std::move(name), width);
  Operation op;
  op.id = static_cast<OpId>(ops_.size());
  op.opcode = Opcode::kInput;
  op.result = v;
  values_[static_cast<std::size_t>(v)].def = op.id;
  ops_.push_back(std::move(op));
  return v;
}

ValueId BasicBlock::constant(std::int64_t literal, std::string name,
                             int width) {
  if (name.empty()) {
    name = "c" + std::to_string(literal);
  }
  const ValueId v = new_value(std::move(name), width);
  values_[static_cast<std::size_t>(v)].literal = literal;
  Operation op;
  op.id = static_cast<OpId>(ops_.size());
  op.opcode = Opcode::kConst;
  op.result = v;
  values_[static_cast<std::size_t>(v)].def = op.id;
  ops_.push_back(std::move(op));
  return v;
}

ValueId BasicBlock::emit(Opcode opcode, const std::vector<ValueId>& operands,
                         std::string result_name, int width) {
  assert(!is_source(opcode) && opcode != Opcode::kOutput);
  assert(static_cast<int>(operands.size()) == arity(opcode));
  const OpId oid = static_cast<OpId>(ops_.size());
  for (ValueId operand : operands) {
    assert(operand >= 0 &&
           static_cast<std::size_t>(operand) < values_.size() &&
           "operand must be defined before use");
    values_[static_cast<std::size_t>(operand)].uses.push_back(oid);
  }
  const ValueId result = new_value(std::move(result_name), width);
  Operation op;
  op.id = oid;
  op.opcode = opcode;
  op.operands = operands;
  op.result = result;
  values_[static_cast<std::size_t>(result)].def = oid;
  ops_.push_back(std::move(op));
  return result;
}

void BasicBlock::output(ValueId v) {
  assert(v >= 0 && static_cast<std::size_t>(v) < values_.size());
  const OpId oid = static_cast<OpId>(ops_.size());
  values_[static_cast<std::size_t>(v)].uses.push_back(oid);
  Operation op;
  op.id = oid;
  op.opcode = Opcode::kOutput;
  op.operands = {v};
  ops_.push_back(std::move(op));
}

std::vector<OpId> BasicBlock::predecessors(OpId o) const {
  std::vector<OpId> preds;
  for (ValueId operand : op(o).operands) {
    const OpId def = value(operand).def;
    if (def >= 0 && !is_source(op(def).opcode) &&
        std::find(preds.begin(), preds.end(), def) == preds.end()) {
      preds.push_back(def);
    }
  }
  return preds;
}

std::string BasicBlock::verify() const {
  std::ostringstream os;
  for (const Operation& o : ops_) {
    if (static_cast<int>(o.operands.size()) != arity(o.opcode)) {
      os << "op " << o.id << " (" << to_string(o.opcode)
         << ") has wrong arity; ";
    }
    for (ValueId operand : o.operands) {
      if (operand < 0 || static_cast<std::size_t>(operand) >= values_.size()) {
        os << "op " << o.id << " reads undefined value " << operand << "; ";
        continue;
      }
      const OpId def = values_[static_cast<std::size_t>(operand)].def;
      if (def < 0 || def >= o.id) {
        os << "op " << o.id << " reads value " << operand
           << " not defined before it; ";
      }
    }
    if (o.opcode != Opcode::kOutput) {
      if (o.result == kNoValue ||
          values_[static_cast<std::size_t>(o.result)].def != o.id) {
        os << "op " << o.id << " result/def link broken; ";
      }
    }
  }
  return os.str();
}

}  // namespace lera::ir
