#pragma once

#include <cassert>
#include <string>
#include <vector>

#include "ir/basic_block.hpp"

/// \file task_graph.hpp
/// Coarse-grain task flow graph of the paper's methodology (§5): the
/// application is a DAG of tasks, each task owning one scheduled basic
/// block. The allocator runs per basic block; the task ordering decides
/// which values are live-out of a block (read later by another task).

namespace lera::ir {

using TaskId = std::int32_t;

struct Task {
  TaskId id = -1;
  std::string name;
  BasicBlock block;
  std::vector<TaskId> deps;  ///< Tasks that must complete before this one.
};

class TaskGraph {
 public:
  /// Adds a task owning \p block; dependencies refer to earlier tasks.
  TaskId add_task(std::string name, BasicBlock block,
                  std::vector<TaskId> deps = {});

  std::size_t num_tasks() const { return tasks_.size(); }
  const Task& task(TaskId t) const {
    assert(t >= 0 && static_cast<std::size_t>(t) < tasks_.size());
    return tasks_[static_cast<std::size_t>(t)];
  }
  const std::vector<Task>& tasks() const { return tasks_; }

  /// Topological order of tasks (insertion order is already topological
  /// because deps must point backwards; this validates and returns it).
  std::vector<TaskId> topological_order() const;

 private:
  std::vector<Task> tasks_;
};

}  // namespace lera::ir
