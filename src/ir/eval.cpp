#include "ir/eval.hpp"

#include <cassert>
#include <cstdlib>

namespace lera::ir {

namespace {

/// Reduces \p x to \p width bits, interpreting the result as a
/// two's-complement signed value (matching fixed-point DSP hardware).
std::int64_t wrap(std::int64_t x, int width) {
  assert(width > 0 && width <= 63);
  const std::uint64_t mask = (std::uint64_t{1} << width) - 1;
  std::uint64_t u = static_cast<std::uint64_t>(x) & mask;
  const std::uint64_t sign = std::uint64_t{1} << (width - 1);
  if (u & sign) {
    u |= ~mask;
  }
  return static_cast<std::int64_t>(u);
}

std::int64_t apply(Opcode opcode, const std::vector<std::int64_t>& in,
                   int width) {
  return apply_opcode(opcode, in, width);
}

}  // namespace

std::int64_t apply_opcode(Opcode opcode, const std::vector<std::int64_t>& in,
                          int width) {
  switch (opcode) {
    case Opcode::kAdd: return wrap(in[0] + in[1], width);
    case Opcode::kSub: return wrap(in[0] - in[1], width);
    case Opcode::kMul: return wrap(in[0] * in[1], width);
    case Opcode::kMac: return wrap(in[0] * in[1] + in[2], width);
    case Opcode::kDiv: return in[1] == 0 ? 0 : wrap(in[0] / in[1], width);
    case Opcode::kShl: return wrap(in[0] << (in[1] & 15), width);
    case Opcode::kShr: return wrap(in[0] >> (in[1] & 15), width);
    case Opcode::kAnd: return wrap(in[0] & in[1], width);
    case Opcode::kOr: return wrap(in[0] | in[1], width);
    case Opcode::kXor: return wrap(in[0] ^ in[1], width);
    case Opcode::kNeg: return wrap(-in[0], width);
    case Opcode::kAbs: return wrap(std::abs(in[0]), width);
    case Opcode::kMin: return std::min(in[0], in[1]);
    case Opcode::kMax: return std::max(in[0], in[1]);
    default: return 0;
  }
}

std::vector<std::int64_t> evaluate(const BasicBlock& bb,
                                   const std::vector<std::int64_t>& inputs) {
  std::vector<std::int64_t> env(bb.num_values(), 0);
  std::size_t next_input = 0;
  for (const Operation& op : bb.ops()) {
    switch (op.opcode) {
      case Opcode::kInput: {
        assert(next_input < inputs.size() && "not enough input samples");
        const Value& v = bb.value(op.result);
        env[static_cast<std::size_t>(op.result)] =
            wrap(inputs[next_input++], v.width);
        break;
      }
      case Opcode::kConst: {
        const Value& v = bb.value(op.result);
        env[static_cast<std::size_t>(op.result)] = wrap(v.literal, v.width);
        break;
      }
      case Opcode::kOutput:
        break;
      default: {
        std::vector<std::int64_t> in;
        in.reserve(op.operands.size());
        for (ValueId operand : op.operands) {
          in.push_back(env[static_cast<std::size_t>(operand)]);
        }
        env[static_cast<std::size_t>(op.result)] =
            apply(op.opcode, in, bb.value(op.result).width);
        break;
      }
    }
  }
  return env;
}

std::vector<std::vector<std::int64_t>> evaluate_trace(
    const BasicBlock& bb,
    const std::vector<std::vector<std::int64_t>>& input_samples) {
  std::vector<std::vector<std::int64_t>> trace;
  trace.reserve(input_samples.size());
  for (const auto& sample : input_samples) {
    trace.push_back(evaluate(bb, sample));
  }
  return trace;
}

}  // namespace lera::ir
