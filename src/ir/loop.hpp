#pragma once

#include <string>
#include <utility>
#include <vector>

#include "ir/basic_block.hpp"

/// \file loop.hpp
/// Loop kernels and unrolling. The paper's setting is a straight-line
/// basic block, and its related work ([8]) pairs register allocation
/// with loop unrolling to expose longer lifetimes; this module provides
/// that front end: describe one loop iteration plus its loop-carried
/// dependences, unroll n iterations into a single block, and feed the
/// result to the allocator.

namespace lera::ir {

/// One loop iteration. `carried` maps a value computed by the body to
/// the body input that receives it in the *next* iteration (e.g. the
/// accumulator, or a delay-line tap). Inputs not fed by a carried pair
/// are either *streaming* (a fresh sample every iteration, the default)
/// or *invariant* (one value shared by all iterations, e.g. filter
/// coefficients).
struct LoopKernel {
  BasicBlock body;
  std::vector<std::pair<ValueId, ValueId>> carried;
  std::vector<ValueId> invariant_inputs;

  /// Structural check: carried sources are body values, carried targets
  /// and invariants are kInput values, no input is both carried and
  /// invariant. Empty string when consistent.
  std::string verify() const;
};

/// Unrolls \p factor iterations into one straight-line SSA block:
///  * iteration 0 reads fresh inputs for every body input (carried
///    targets become the loop's initial values);
///  * iteration k > 0 wires each carried target directly to iteration
///    k-1's source value, reuses invariant inputs and constants, and
///    creates fresh streaming inputs;
///  * body outputs are emitted every iteration (streamed out), and the
///    final iteration's carried sources become live-out (they feed the
///    next execution of the loop).
BasicBlock unroll(const LoopKernel& kernel, int factor);

}  // namespace lera::ir
