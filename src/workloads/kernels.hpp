#pragma once

#include <cstdint>
#include <vector>

#include "ir/basic_block.hpp"

/// \file kernels.hpp
/// DSP kernels of the kind the paper's introduction motivates (audio,
/// video, radar). Each returns a basic block ready for scheduling; the
/// coefficient constants are folded in as kConst values (excluded from
/// allocation by default, like immediates).

namespace lera::workloads {

/// Direct-form FIR filter: y = sum_{k} c_k * x_k.
ir::BasicBlock make_fir(int taps = 8);

/// Biquad IIR section (Direct Form I): two feedforward + two feedback
/// taps around a recurrence.
ir::BasicBlock make_iir_biquad();

/// The classic fifth-order elliptic wave filter HLS benchmark
/// (26 additions, 8 multiplications).
ir::BasicBlock make_elliptic_wave_filter();

/// Radix-2 FFT butterfly on complex fixed-point inputs.
ir::BasicBlock make_fft_butterfly();

/// 4-point DCT (matrix form, 16 MACs folded into mul/add).
ir::BasicBlock make_dct4();

/// Full radix-2 decimation-in-time FFT over \p n complex points
/// (n = power of two): log2(n) stages of butterflies with data-dependent
/// twiddles. The biggest regular kernel of the suite.
ir::BasicBlock make_fft(int n = 8);

/// Dense matrix multiply C = A x B over n x n 16-bit matrices.
ir::BasicBlock make_matmul(int n = 3);

/// 3x3 convolution of one output pixel neighbourhood (image kernels are
/// the "video algorithms" of the paper's introduction).
ir::BasicBlock make_conv3x3();

/// Normalised lattice filter section chain (speech-coding style):
/// \p stages forward/backward recursions with carried state.
ir::BasicBlock make_lattice(int stages = 4);

/// One LMS adaptive-filter update step: y = w.x, e = d - y,
/// w'_k = w_k + (mu*e)*x_k. Coefficients are live-out (next sample).
ir::BasicBlock make_lms(int taps = 4);

/// Viterbi add-compare-select butterfly (two states, two branch
/// metrics): the decision kernel of convolutional decoders.
ir::BasicBlock make_viterbi_acs();

/// Goertzel single-bin DFT recurrence, \p iterations unrolled steps:
/// s = x + 2cos(w)*s1 - s2 (tone detection, DTMF-style).
ir::BasicBlock make_goertzel(int iterations = 4);

/// Radar-signal-processing proxy for the paper's industrial example:
/// a complex matched filter (I/Q FIR), Doppler mixing, squared-magnitude
/// detection and CFAR-style thresholding. \p taps sizes the instance;
/// taps = 6 with two ALUs and two multipliers gives a maximum lifetime
/// density in the mid-twenties, matching the paper's reported 26.
ir::BasicBlock make_rsp(int taps = 6);

/// Uniform pseudo-random input samples for activity measurement:
/// \p samples rows of \p width-bit values, one per kInput of the block.
std::vector<std::vector<std::int64_t>> random_inputs(
    const ir::BasicBlock& bb, int samples, std::uint64_t seed = 1);

/// Input stimulus shapes for activity measurement. Uniform noise makes
/// every Hamming distance hover near 0.5; real DSP signals are strongly
/// correlated, which is where measuring H (rather than assuming 0.5)
/// pays off.
enum class Stimulus {
  kUniform,   ///< Independent uniform samples (same as random_inputs).
  kSine,      ///< Sampled sinusoids, one phase offset per input.
  kAr1,       ///< First-order autoregressive ("speech-like") process.
  kRamp,      ///< Slow counters (sensor/index-like data).
};

/// Correlated input rows: \p samples rows, one column per kInput.
std::vector<std::vector<std::int64_t>> correlated_inputs(
    const ir::BasicBlock& bb, int samples, Stimulus stimulus,
    std::uint64_t seed = 1);

}  // namespace lera::workloads
