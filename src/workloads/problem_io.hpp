#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "alloc/problem.hpp"

/// \file problem_io.hpp
/// Plain-text serialisation of allocation problems, so instances can be
/// shipped around without code (the hand examples of papers, regression
/// cases, generator outputs). Format, one directive per line, '#'
/// comments:
///
///   steps 7
///   registers 1
///   access period 2 phase 1        # optional; default unrestricted
///   var a write 1 reads 3          # read list; 'liveout' marks x+1
///   var c write 2 reads 8 liveout width 16
///   activity a b 0.2               # pairwise H, default 0.5
///   initial a 0.4                  # first-write activity, default 0.5
///
/// Energy parameters stay code-side (they are platform, not instance).

namespace lera::workloads {

struct ProblemParseResult {
  std::optional<alloc::AllocationProblem> problem;
  std::string error;

  bool ok() const { return problem.has_value(); }
};

/// Parses the format above; \p params and \p split_all supply the
/// platform side (split cuts are derived from the file's access model).
ProblemParseResult parse_problem(const std::string& text,
                                 const energy::EnergyParams& params = {});

/// Writes \p p in the same format (round-trips through parse_problem).
void write_problem(std::ostream& os, const alloc::AllocationProblem& p);

}  // namespace lera::workloads
