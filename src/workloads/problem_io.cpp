#include "workloads/problem_io.hpp"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <map>
#include <ostream>
#include <sstream>
#include <vector>

namespace lera::workloads {

namespace {

std::vector<std::string> split_words(const std::string& line) {
  std::vector<std::string> words;
  std::istringstream in(line);
  std::string word;
  while (in >> word) {
    if (word[0] == '#') break;
    words.push_back(word);
  }
  return words;
}

/// Hostile-count ceiling: no instance this library can solve needs more
/// steps than this, and downstream stages do work proportional to the
/// declared count (access-period segment splitting walks every step a
/// lifetime spans), so an unbounded header is a denial-of-service lever.
constexpr long long kMaxDeclaredSteps = 1 << 22;

/// A real file describing S steps carries variables whose write/read
/// times reference them — bytes roughly proportional to S. Bound the
/// declared count by the bytes available to justify it so a 30-byte
/// header cannot declare billions of steps; generously loose (64x, with
/// a floor for tiny hand-written cases) so no legitimate sparse
/// instance is ever refused.
long long max_plausible_steps(std::size_t input_bytes) {
  return std::min<long long>(
      kMaxDeclaredSteps,
      std::max<long long>(4096,
                          64 * static_cast<long long>(input_bytes)));
}

}  // namespace

ProblemParseResult parse_problem(const std::string& text,
                                 const energy::EnergyParams& params) {
  int steps = -1;
  int registers = 0;
  lifetime::SplitOptions split;
  std::vector<lifetime::Lifetime> lifetimes;
  std::map<std::string, std::size_t> index_of;
  struct PendingActivity {
    std::string a;
    std::string b;  // empty for 'initial'
    double h;
    int line;
  };
  std::vector<PendingActivity> pending;

  auto fail = [](int line_no, const std::string& message) {
    ProblemParseResult r;
    r.error = "line " + std::to_string(line_no) + ": " + message;
    return r;
  };

  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> w = split_words(line);
    if (w.empty()) continue;
    try {
      if (w[0] == "steps" && w.size() == 2) {
        steps = std::stoi(w[1]);
        if (steps < 1) {
          return fail(line_no, "'steps' must be at least 1");
        }
        if (steps > max_plausible_steps(text.size())) {
          return fail(line_no,
                      "declared step count " + w[1] +
                          " is implausibly large for " +
                          std::to_string(text.size()) +
                          " bytes of input");
        }
      } else if (w[0] == "registers" && w.size() == 2) {
        registers = std::stoi(w[1]);
        if (registers < 0) {
          return fail(line_no, "'registers' must be non-negative");
        }
      } else if (w[0] == "access" && w.size() >= 3 && w[1] == "period") {
        split.access.period = std::stoi(w[2]);
        if (split.access.period < 1) {
          return fail(line_no, "access period must be at least 1");
        }
        if (w.size() == 5 && w[3] == "phase") {
          split.access.phase = std::stoi(w[4]);
          if (split.access.phase < 0 ||
              split.access.phase >= split.access.period) {
            return fail(line_no, "access phase must be in [0, period)");
          }
        } else if (w.size() != 3) {
          return fail(line_no, "expected 'access period N [phase M]'");
        }
      } else if (w[0] == "var") {
        // var <name> [width W] write T reads T1 T2 ... [liveout]
        if (w.size() < 5) return fail(line_no, "truncated var directive");
        lifetime::Lifetime lt;
        lt.value = static_cast<ir::ValueId>(lifetimes.size());
        lt.name = w[1];
        if (index_of.count(lt.name) != 0) {
          return fail(line_no, "duplicate variable '" + lt.name + "'");
        }
        std::size_t i = 2;
        if (w[i] == "width") {
          if (i + 1 >= w.size()) {
            return fail(line_no, "truncated 'width' (expected a value)");
          }
          lt.width = std::stoi(w[i + 1]);
          if (lt.width < 1 || lt.width > 64) {
            return fail(line_no, "width must be in [1, 64]");
          }
          i += 2;
        }
        if (i + 1 >= w.size() || w[i] != "write") {
          return fail(line_no, "expected 'write <step>'");
        }
        lt.write_time = std::stoi(w[i + 1]);
        if (lt.write_time < 0) {
          return fail(line_no, "negative write time");
        }
        i += 2;
        if (i >= w.size() || w[i] != "reads") {
          return fail(line_no, "expected 'reads <steps...>'");
        }
        ++i;
        for (; i < w.size(); ++i) {
          if (w[i] == "liveout") {
            lt.live_out = true;
          } else {
            const int t = std::stoi(w[i]);
            if (t < 0) return fail(line_no, "negative read time");
            lt.read_times.push_back(t);
          }
        }
        if (lt.read_times.empty() && !lt.live_out) {
          return fail(line_no, "variable without reads");
        }
        index_of[lt.name] = lifetimes.size();
        lifetimes.push_back(std::move(lt));
      } else if (w[0] == "activity" && w.size() == 4) {
        pending.push_back({w[1], w[2], std::stod(w[3]), line_no});
      } else if (w[0] == "initial" && w.size() == 3) {
        pending.push_back({w[1], "", std::stod(w[2]), line_no});
      } else {
        return fail(line_no, "unrecognised directive '" + w[0] + "'");
      }
    } catch (...) {
      return fail(line_no, "malformed number");
    }
  }

  if (steps < 0) return fail(0, "missing 'steps' directive");
  // Live-out variables read at x+1; resolve now that steps is known.
  for (lifetime::Lifetime& lt : lifetimes) {
    if (lt.write_time > steps) {
      ProblemParseResult r;
      r.error = "variable '" + lt.name + "' written after the last step";
      return r;
    }
    for (int t : lt.read_times) {
      if (t > steps) {
        ProblemParseResult r;
        r.error = "variable '" + lt.name + "' read after the last step";
        return r;
      }
    }
    if (lt.live_out) {
      lt.read_times.push_back(steps + 1);
    }
    std::sort(lt.read_times.begin(), lt.read_times.end());
    lt.read_times.erase(
        std::unique(lt.read_times.begin(), lt.read_times.end()),
        lt.read_times.end());
    if (lt.read_times.front() <= lt.write_time) {
      ProblemParseResult r;
      r.error = "variable '" + lt.name + "' read at or before its write";
      return r;
    }
  }

  energy::ActivityMatrix activity(lifetimes.size());
  for (const PendingActivity& pa : pending) {
    const auto a = index_of.find(pa.a);
    if (a == index_of.end()) {
      return fail(pa.line, "unknown variable '" + pa.a + "'");
    }
    if (pa.h < 0 || pa.h > 1) {
      return fail(pa.line, "activity outside [0,1]");
    }
    if (pa.b.empty()) {
      activity.set_initial(a->second, pa.h);
    } else {
      const auto b = index_of.find(pa.b);
      if (b == index_of.end()) {
        return fail(pa.line, "unknown variable '" + pa.b + "'");
      }
      activity.set(a->second, b->second, pa.h);
    }
  }

  ProblemParseResult result;
  result.problem = alloc::make_problem(std::move(lifetimes), steps,
                                       registers, params,
                                       std::move(activity), split);
  return result;
}

void write_problem(std::ostream& os, const alloc::AllocationProblem& p) {
  // Reproducer files must reload byte-identically: write doubles at
  // max_digits10 so write -> parse -> write is a fixed point, and restore
  // the caller's stream state on the way out.
  const std::streamsize saved_precision = os.precision(
      std::numeric_limits<double>::max_digits10);
  os << "# lera allocation problem\n";
  os << "steps " << p.num_steps << "\n";
  os << "registers " << p.num_registers << "\n";
  if (p.access.period > 1) {
    os << "access period " << p.access.period << " phase "
       << p.access.phase << "\n";
  }
  for (std::size_t v = 0; v < p.lifetimes.size(); ++v) {
    const lifetime::Lifetime& lt = p.lifetimes[v];
    os << "var " << lt.name << " width " << lt.width << " write "
       << lt.write_time << " reads";
    for (int r : lt.read_times) {
      if (lt.live_out && r == p.num_steps + 1) continue;
      os << " " << r;
    }
    if (lt.live_out) os << " liveout";
    os << "\n";
  }
  for (std::size_t a = 0; a < p.lifetimes.size(); ++a) {
    os << "initial " << p.lifetimes[a].name << " "
       << p.activity.initial(a) << "\n";
    for (std::size_t b = a + 1; b < p.lifetimes.size(); ++b) {
      os << "activity " << p.lifetimes[a].name << " "
         << p.lifetimes[b].name << " " << p.activity.hamming(a, b) << "\n";
    }
  }
  os.precision(saved_precision);
}

}  // namespace lera::workloads
