#pragma once

#include <cstdint>

#include "alloc/problem.hpp"
#include "ir/basic_block.hpp"
#include "netflow/graph.hpp"

/// \file random_gen.hpp
/// Seeded random instance generators: flow problems for solver
/// cross-checks, lifetime sets and DFGs for allocator property tests and
/// scalability benchmarks. All generators are deterministic in the seed.

namespace lera::workloads {

struct RandomFlowOptions {
  int num_nodes = 12;
  int num_arcs = 30;
  netflow::Flow max_capacity = 6;
  netflow::Cost min_cost = -20;
  netflow::Cost max_cost = 40;
  /// Total amount pushed from node 0 to node num_nodes-1 (0 = pure
  /// circulation, interesting when negative-cost cycles exist).
  netflow::Flow supply = 4;
  /// Probability of adding a lower bound (uniform in [0, cap]).
  double lower_bound_prob = 0.0;
};

/// Random b-flow instance. Arcs are sampled uniformly over ordered node
/// pairs; a chain 0 -> 1 -> ... -> n-1 of generous arcs keeps most
/// instances feasible (infeasible ones are still valid test inputs).
netflow::Graph random_flow_problem(std::uint64_t seed,
                                   const RandomFlowOptions& opts = {});

struct RandomLifetimeOptions {
  int num_vars = 8;
  int num_steps = 10;
  int max_reads = 2;     ///< Additional interior reads beyond the last.
  double live_out_prob = 0.15;
};

/// Random lifetime set (write < reads <= x, live-outs read at x+1).
std::vector<lifetime::Lifetime> random_lifetimes(
    std::uint64_t seed, const RandomLifetimeOptions& opts = {});

/// Random activity matrix with entries uniform in [0, 1].
energy::ActivityMatrix random_activity(std::uint64_t seed, std::size_t n);

struct RandomDfgOptions {
  int num_ops = 40;
  int num_inputs = 6;
  double output_prob = 0.2;  ///< Chance a sink value becomes live-out.
};

/// Random arithmetic basic block: each operation draws operands from
/// earlier values (biased towards recent ones to bound lifetime spans).
ir::BasicBlock random_dfg(std::uint64_t seed,
                          const RandomDfgOptions& opts = {});

}  // namespace lera::workloads
