#include "workloads/random_gen.hpp"

#include <algorithm>
#include <random>
#include <string>

namespace lera::workloads {

netflow::Graph random_flow_problem(std::uint64_t seed,
                                   const RandomFlowOptions& opts) {
  std::mt19937_64 rng(seed);
  netflow::Graph g(opts.num_nodes);
  std::uniform_int_distribution<netflow::NodeId> node(0, opts.num_nodes - 1);
  std::uniform_int_distribution<netflow::Flow> cap(1, opts.max_capacity);
  std::uniform_int_distribution<netflow::Cost> cost(opts.min_cost,
                                                    opts.max_cost);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  // Feasibility backbone from source to sink.
  for (netflow::NodeId v = 0; v + 1 < opts.num_nodes; ++v) {
    g.add_arc(v, v + 1, opts.supply + opts.max_capacity,
              std::abs(cost(rng)));
  }
  for (int a = 0; a < opts.num_arcs; ++a) {
    const netflow::NodeId tail = node(rng);
    const netflow::NodeId head = node(rng);
    if (tail == head) continue;
    const netflow::Flow upper = cap(rng);
    netflow::Flow lower = 0;
    if (uniform(rng) < opts.lower_bound_prob) {
      lower = std::uniform_int_distribution<netflow::Flow>(0, upper)(rng);
    }
    g.add_arc(tail, head, upper, cost(rng), lower);
  }
  if (opts.supply > 0) {
    g.add_supply(0, opts.supply);
    g.add_supply(opts.num_nodes - 1, -opts.supply);
  }
  return g;
}

std::vector<lifetime::Lifetime> random_lifetimes(
    std::uint64_t seed, const RandomLifetimeOptions& opts) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> step(0, opts.num_steps - 1);
  std::uniform_int_distribution<int> extra_reads(0, opts.max_reads);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  std::vector<lifetime::Lifetime> lifetimes;
  for (int v = 0; v < opts.num_vars; ++v) {
    lifetime::Lifetime lt;
    lt.value = v;
    lt.name = "v" + std::to_string(v);
    lt.write_time = step(rng);
    if (uniform(rng) < opts.live_out_prob) {
      lt.live_out = true;
      lt.read_times.push_back(opts.num_steps + 1);
    } else {
      lt.read_times.push_back(std::uniform_int_distribution<int>(
          lt.write_time + 1, opts.num_steps)(rng));
    }
    const int extras = extra_reads(rng);
    for (int r = 0; r < extras; ++r) {
      const int hi = std::min(lt.read_times.back(), opts.num_steps);
      if (hi <= lt.write_time + 1) break;
      lt.read_times.push_back(std::uniform_int_distribution<int>(
          lt.write_time + 1, hi)(rng));
    }
    std::sort(lt.read_times.begin(), lt.read_times.end());
    lt.read_times.erase(
        std::unique(lt.read_times.begin(), lt.read_times.end()),
        lt.read_times.end());
    lifetimes.push_back(std::move(lt));
  }
  return lifetimes;
}

energy::ActivityMatrix random_activity(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);
  energy::ActivityMatrix m(n);
  for (std::size_t i = 0; i < n; ++i) {
    m.set_initial(i, uniform(rng));
    for (std::size_t j = i + 1; j < n; ++j) {
      m.set(i, j, uniform(rng));
    }
  }
  return m;
}

ir::BasicBlock random_dfg(std::uint64_t seed, const RandomDfgOptions& opts) {
  std::mt19937_64 rng(seed);
  ir::BasicBlock bb("rand" + std::to_string(seed));
  std::vector<ir::ValueId> pool;
  for (int i = 0; i < opts.num_inputs; ++i) {
    pool.push_back(bb.input("in" + std::to_string(i)));
  }

  const ir::Opcode menu[] = {ir::Opcode::kAdd, ir::Opcode::kSub,
                             ir::Opcode::kMul, ir::Opcode::kXor,
                             ir::Opcode::kAnd, ir::Opcode::kMin,
                             ir::Opcode::kMax};
  std::uniform_int_distribution<std::size_t> pick_op(0, std::size(menu) - 1);
  std::uniform_real_distribution<double> uniform(0.0, 1.0);

  // Bias operand choice towards recent values so lifetimes stay bounded.
  auto pick_value = [&]() -> ir::ValueId {
    const std::size_t n = pool.size();
    const std::size_t window = std::max<std::size_t>(4, n / 3);
    const std::size_t lo = n > window ? n - window : 0;
    return pool[std::uniform_int_distribution<std::size_t>(lo, n - 1)(rng)];
  };

  for (int i = 0; i < opts.num_ops; ++i) {
    const ir::Opcode op = menu[pick_op(rng)];
    pool.push_back(bb.emit(op, {pick_value(), pick_value()}));
  }

  // Values never read would be dead code; export a sample of sinks.
  for (const ir::Value& v : bb.values()) {
    if (v.uses.empty() && uniform(rng) < opts.output_prob) {
      bb.output(v.id);
    }
  }
  // Guarantee at least one output so the block is not fully dead.
  for (const ir::Value& v : bb.values()) {
    if (v.uses.empty()) {
      bb.output(v.id);
      break;
    }
  }
  return bb;
}

}  // namespace lera::workloads
