#include "workloads/paper_examples.hpp"

namespace lera::workloads {

namespace {

lifetime::Lifetime make_lifetime(const char* name, int write, int read,
                                 bool live_out = false) {
  lifetime::Lifetime lt;
  lt.value = 0;  // Hand examples have no IR behind them.
  lt.name = name;
  lt.write_time = write;
  lt.read_times = {read};
  lt.live_out = live_out;
  return lt;
}

}  // namespace

alloc::AllocationProblem figure3_problem(const energy::EnergyParams& params) {
  // a=[1,3] b=[3,5] c=[5,7] d=[1,2] e=[2,3] f=[3,7]; x = 7, R = 1.
  std::vector<lifetime::Lifetime> lifetimes = {
      make_lifetime("a", 1, 3), make_lifetime("b", 3, 5),
      make_lifetime("c", 5, 7), make_lifetime("d", 1, 2),
      make_lifetime("e", 2, 3), make_lifetime("f", 3, 7),
  };
  enum { A, B, C, D, E, F };
  energy::ActivityMatrix activity(lifetimes.size(), 0.5, 0.5);
  activity.set(A, B, 0.2);
  activity.set(A, F, 0.5);
  activity.set(E, B, 0.6);
  activity.set(E, F, 0.3);
  activity.set(B, C, 0.8);
  activity.set(D, E, 0.1);
  return alloc::make_problem(std::move(lifetimes), /*num_steps=*/7,
                             /*num_registers=*/1, params,
                             std::move(activity));
}

alloc::AllocationProblem figure4_problem(const Figure4Options& opts) {
  // a=[1,3] d=[1,2] e=[2,3] f=[3,6] b=[6,8] c=[8,9]; x = 9, R = 1.
  std::vector<lifetime::Lifetime> lifetimes = {
      make_lifetime("a", 1, 3), make_lifetime("b", 6, 8),
      make_lifetime("c", 8, 9), make_lifetime("d", 1, 2),
      make_lifetime("e", 2, 3), make_lifetime("f", 3, 6),
  };
  enum { A, B, C, D, E, F };
  energy::ActivityMatrix activity(lifetimes.size(), 0.5, 0.5);
  activity.set(A, B, 0.2);
  activity.set(A, F, 0.5);
  activity.set(E, B, 0.6);
  activity.set(E, F, 0.3);
  activity.set(B, C, 0.8);
  activity.set(D, E, 0.1);
  activity.set(F, B, 0.5);
  lifetime::SplitOptions split;
  if (opts.split_f) {
    split.manual_cuts.push_back({F, 4});
  }
  return alloc::make_problem(std::move(lifetimes), /*num_steps=*/9,
                             /*num_registers=*/1, opts.params,
                             std::move(activity), split);
}

std::vector<lifetime::Lifetime> figure1_lifetimes() {
  // a=[1,3] b=[2,3] c=[2,->] d=[3,->] e=[4,6]; x = 7; c and d are read
  // "after time 7 by another task" (read time 8 = x+1).
  return {
      make_lifetime("a", 1, 3), make_lifetime("b", 2, 3),
      make_lifetime("c", 2, 8, /*live_out=*/true),
      make_lifetime("d", 3, 8, /*live_out=*/true),
      make_lifetime("e", 4, 6),
  };
}

}  // namespace lera::workloads
