#include "workloads/kernels.hpp"

#include <cmath>
#include <random>
#include <string>

namespace lera::workloads {

namespace {

using ir::BasicBlock;
using ir::Opcode;
using ir::ValueId;

}  // namespace

BasicBlock make_fir(int taps) {
  BasicBlock bb("fir" + std::to_string(taps));
  std::vector<ValueId> x(static_cast<std::size_t>(taps));
  std::vector<ValueId> c(static_cast<std::size_t>(taps));
  for (int k = 0; k < taps; ++k) {
    x[static_cast<std::size_t>(k)] = bb.input("x" + std::to_string(k));
    c[static_cast<std::size_t>(k)] =
        bb.constant(3 * k + 1, "c" + std::to_string(k));
  }
  ValueId acc = bb.emit(Opcode::kMul, {x[0], c[0]}, "p0");
  for (int k = 1; k < taps; ++k) {
    acc = bb.emit(Opcode::kMac,
                  {x[static_cast<std::size_t>(k)],
                   c[static_cast<std::size_t>(k)], acc},
                  "acc" + std::to_string(k));
  }
  bb.output(acc);
  return bb;
}

BasicBlock make_iir_biquad() {
  BasicBlock bb("iir_biquad");
  const ValueId x = bb.input("x");
  const ValueId x1 = bb.input("x1");   // x[n-1]
  const ValueId x2 = bb.input("x2");   // x[n-2]
  const ValueId y1 = bb.input("y1");   // y[n-1]
  const ValueId y2 = bb.input("y2");   // y[n-2]
  const ValueId b0 = bb.constant(7, "b0");
  const ValueId b1 = bb.constant(5, "b1");
  const ValueId b2 = bb.constant(3, "b2");
  const ValueId a1 = bb.constant(2, "a1");
  const ValueId a2 = bb.constant(1, "a2");

  const ValueId ff0 = bb.emit(Opcode::kMul, {x, b0}, "ff0");
  const ValueId ff1 = bb.emit(Opcode::kMac, {x1, b1, ff0}, "ff1");
  const ValueId ff2 = bb.emit(Opcode::kMac, {x2, b2, ff1}, "ff2");
  const ValueId fb1 = bb.emit(Opcode::kMul, {y1, a1}, "fb1");
  const ValueId fb2 = bb.emit(Opcode::kMac, {y2, a2, fb1}, "fb2");
  const ValueId y = bb.emit(Opcode::kSub, {ff2, fb2}, "y");
  bb.output(y);
  return bb;
}

BasicBlock make_elliptic_wave_filter() {
  // The standard fifth-order elliptic wave filter benchmark DFG
  // (Kung/Whitehouse formulation used throughout the HLS literature).
  BasicBlock bb("ewf");
  const ValueId in = bb.input("in");
  ValueId sv[8];
  for (int i = 0; i < 7; ++i) {
    sv[i] = bb.input("sv" + std::to_string(i));
  }
  auto add = [&](ValueId a, ValueId b, const char* n) {
    return bb.emit(Opcode::kAdd, {a, b}, n);
  };
  auto mul = [&](ValueId a, ValueId b, const char* n) {
    return bb.emit(Opcode::kMul, {a, b}, n);
  };
  const ValueId k1 = bb.constant(3, "k1");
  const ValueId k2 = bb.constant(5, "k2");

  const ValueId t1 = add(in, sv[0], "t1");
  const ValueId t2 = add(t1, sv[1], "t2");
  const ValueId m1 = mul(t2, k1, "m1");
  const ValueId t3 = add(m1, sv[2], "t3");
  const ValueId t4 = add(t3, sv[3], "t4");
  const ValueId m2 = mul(t4, k2, "m2");
  const ValueId t5 = add(m2, t1, "t5");
  const ValueId t6 = add(t5, sv[4], "t6");
  const ValueId m3 = mul(t6, k1, "m3");
  const ValueId t7 = add(m3, t3, "t7");
  const ValueId m4 = mul(t7, k2, "m4");
  const ValueId t8 = add(m4, sv[5], "t8");
  const ValueId t9 = add(t8, t6, "t9");
  const ValueId m5 = mul(t9, k1, "m5");
  const ValueId t10 = add(m5, sv[6], "t10");
  const ValueId t11 = add(t10, t8, "t11");
  const ValueId m6 = mul(t11, k2, "m6");
  const ValueId t12 = add(m6, t5, "t12");
  const ValueId t13 = add(t12, t9, "t13");
  const ValueId m7 = mul(t13, k1, "m7");
  const ValueId t14 = add(m7, t10, "t14");
  const ValueId m8 = mul(t14, k2, "m8");
  const ValueId out = add(m8, t12, "out");
  bb.output(out);
  bb.output(t14);  // Next-state feedback values are live-out.
  bb.output(t13);
  bb.output(t11);
  return bb;
}

BasicBlock make_fft_butterfly() {
  BasicBlock bb("fft_butterfly");
  const ValueId ar = bb.input("ar");
  const ValueId ai = bb.input("ai");
  const ValueId br = bb.input("br");
  const ValueId bi = bb.input("bi");
  const ValueId wr = bb.input("wr");  // Twiddle factor (data-dependent).
  const ValueId wi = bb.input("wi");

  // t = w * b (complex multiply).
  const ValueId p0 = bb.emit(Opcode::kMul, {br, wr}, "p0");
  const ValueId p1 = bb.emit(Opcode::kMul, {bi, wi}, "p1");
  const ValueId p2 = bb.emit(Opcode::kMul, {br, wi}, "p2");
  const ValueId p3 = bb.emit(Opcode::kMul, {bi, wr}, "p3");
  const ValueId tr = bb.emit(Opcode::kSub, {p0, p1}, "tr");
  const ValueId ti = bb.emit(Opcode::kAdd, {p2, p3}, "ti");

  // Outputs: a + t, a - t.
  bb.output(bb.emit(Opcode::kAdd, {ar, tr}, "xr"));
  bb.output(bb.emit(Opcode::kAdd, {ai, ti}, "xi"));
  bb.output(bb.emit(Opcode::kSub, {ar, tr}, "yr"));
  bb.output(bb.emit(Opcode::kSub, {ai, ti}, "yi"));
  return bb;
}

BasicBlock make_dct4() {
  BasicBlock bb("dct4");
  ValueId x[4];
  for (int i = 0; i < 4; ++i) {
    x[i] = bb.input("x" + std::to_string(i));
  }
  // Even/odd decomposition.
  const ValueId s0 = bb.emit(Opcode::kAdd, {x[0], x[3]}, "s0");
  const ValueId s1 = bb.emit(Opcode::kAdd, {x[1], x[2]}, "s1");
  const ValueId d0 = bb.emit(Opcode::kSub, {x[0], x[3]}, "d0");
  const ValueId d1 = bb.emit(Opcode::kSub, {x[1], x[2]}, "d1");
  const ValueId c0 = bb.constant(23170 >> 8, "c0");
  const ValueId c1 = bb.constant(30274 >> 8, "c1");
  const ValueId c2 = bb.constant(12540 >> 8, "c2");

  bb.output(bb.emit(Opcode::kMul, {bb.emit(Opcode::kAdd, {s0, s1}, "e0"),
                                   c0},
                    "X0"));
  bb.output(bb.emit(Opcode::kMul, {bb.emit(Opcode::kSub, {s0, s1}, "e1"),
                                   c0},
                    "X2"));
  const ValueId o0 = bb.emit(Opcode::kMul, {d0, c1}, "o0");
  const ValueId o1 = bb.emit(Opcode::kMul, {d1, c2}, "o1");
  bb.output(bb.emit(Opcode::kAdd, {o0, o1}, "X1"));
  const ValueId o2 = bb.emit(Opcode::kMul, {d0, c2}, "o2");
  const ValueId o3 = bb.emit(Opcode::kMul, {d1, c1}, "o3");
  bb.output(bb.emit(Opcode::kSub, {o2, o3}, "X3"));
  return bb;
}

BasicBlock make_fft(int n) {
  assert(n >= 2 && (n & (n - 1)) == 0 && "n must be a power of two");
  BasicBlock bb("fft" + std::to_string(n));
  std::vector<ValueId> re(static_cast<std::size_t>(n));
  std::vector<ValueId> im(static_cast<std::size_t>(n));
  // Bit-reversed input order, as hardware pipelines consume it.
  for (int i = 0; i < n; ++i) {
    re[static_cast<std::size_t>(i)] = bb.input("xr" + std::to_string(i));
    im[static_cast<std::size_t>(i)] = bb.input("xi" + std::to_string(i));
  }
  // One twiddle pair per distinct angle (data inputs: they come from a
  // coefficient RAM updated by the tuner).
  std::vector<ValueId> wr(static_cast<std::size_t>(n / 2));
  std::vector<ValueId> wi(static_cast<std::size_t>(n / 2));
  for (int i = 0; i < n / 2; ++i) {
    wr[static_cast<std::size_t>(i)] = bb.input("wr" + std::to_string(i));
    wi[static_cast<std::size_t>(i)] = bb.input("wi" + std::to_string(i));
  }

  for (int len = 2; len <= n; len *= 2) {
    const int twiddle_stride = n / len;
    for (int base = 0; base < n; base += len) {
      for (int k = 0; k < len / 2; ++k) {
        const auto a = static_cast<std::size_t>(base + k);
        const auto b = static_cast<std::size_t>(base + k + len / 2);
        const auto w = static_cast<std::size_t>(k * twiddle_stride);
        const std::string tag = std::to_string(len) + "_" +
                                std::to_string(base + k);
        // t = w * x[b] (complex).
        const ValueId p0 = bb.emit(Opcode::kMul, {re[b], wr[w]},
                                   "p0_" + tag);
        const ValueId p1 = bb.emit(Opcode::kMul, {im[b], wi[w]},
                                   "p1_" + tag);
        const ValueId p2 = bb.emit(Opcode::kMul, {re[b], wi[w]},
                                   "p2_" + tag);
        const ValueId p3 = bb.emit(Opcode::kMul, {im[b], wr[w]},
                                   "p3_" + tag);
        const ValueId tr = bb.emit(Opcode::kSub, {p0, p1}, "tr_" + tag);
        const ValueId ti = bb.emit(Opcode::kAdd, {p2, p3}, "ti_" + tag);
        const ValueId ar = re[a];
        const ValueId ai = im[a];
        re[a] = bb.emit(Opcode::kAdd, {ar, tr}, "ur_" + tag);
        im[a] = bb.emit(Opcode::kAdd, {ai, ti}, "ui_" + tag);
        re[b] = bb.emit(Opcode::kSub, {ar, tr}, "lr_" + tag);
        im[b] = bb.emit(Opcode::kSub, {ai, ti}, "li_" + tag);
      }
    }
  }
  for (int i = 0; i < n; ++i) {
    bb.output(re[static_cast<std::size_t>(i)]);
    bb.output(im[static_cast<std::size_t>(i)]);
  }
  return bb;
}

BasicBlock make_matmul(int n) {
  BasicBlock bb("matmul" + std::to_string(n));
  std::vector<ValueId> a(static_cast<std::size_t>(n * n));
  std::vector<ValueId> b(static_cast<std::size_t>(n * n));
  for (int i = 0; i < n * n; ++i) {
    a[static_cast<std::size_t>(i)] = bb.input("a" + std::to_string(i));
    b[static_cast<std::size_t>(i)] = bb.input("b" + std::to_string(i));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      ValueId acc = bb.emit(
          Opcode::kMul,
          {a[static_cast<std::size_t>(i * n)],
           b[static_cast<std::size_t>(j)]},
          "c" + std::to_string(i) + std::to_string(j) + "_0");
      for (int k = 1; k < n; ++k) {
        acc = bb.emit(Opcode::kMac,
                      {a[static_cast<std::size_t>(i * n + k)],
                       b[static_cast<std::size_t>(k * n + j)], acc},
                      "c" + std::to_string(i) + std::to_string(j) + "_" +
                          std::to_string(k));
      }
      bb.output(acc);
    }
  }
  return bb;
}

BasicBlock make_conv3x3() {
  BasicBlock bb("conv3x3");
  ValueId acc = ir::kNoValue;
  for (int i = 0; i < 9; ++i) {
    const ValueId pixel = bb.input("px" + std::to_string(i));
    const ValueId coeff = bb.constant(i - 4, "k" + std::to_string(i));
    acc = i == 0 ? bb.emit(Opcode::kMul, {pixel, coeff}, "m0")
                 : bb.emit(Opcode::kMac, {pixel, coeff, acc},
                           "s" + std::to_string(i));
  }
  const ValueId shifted =
      bb.emit(Opcode::kShr, {acc, bb.constant(4, "norm")}, "shifted");
  const ValueId clamped = bb.emit(
      Opcode::kMax, {shifted, bb.constant(0, "lo")}, "clamped");
  bb.output(bb.emit(Opcode::kMin, {clamped, bb.constant(255, "hi")},
                    "pixel_out"));
  return bb;
}

BasicBlock make_lattice(int stages) {
  BasicBlock bb("lattice" + std::to_string(stages));
  ValueId f = bb.input("x");  // Forward residual.
  std::vector<ValueId> g(static_cast<std::size_t>(stages));
  std::vector<ValueId> k(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) {
    g[static_cast<std::size_t>(s)] = bb.input("g" + std::to_string(s));
    k[static_cast<std::size_t>(s)] = bb.input("k" + std::to_string(s));
  }
  for (int s = 0; s < stages; ++s) {
    const auto i = static_cast<std::size_t>(s);
    // f' = f - k*g ; g' = g - k*f (normalised section).
    const ValueId kf = bb.emit(Opcode::kMul, {k[i], g[i]},
                               "kg" + std::to_string(s));
    const ValueId f_next =
        bb.emit(Opcode::kSub, {f, kf}, "f" + std::to_string(s + 1));
    const ValueId kg = bb.emit(Opcode::kMul, {k[i], f},
                               "kf" + std::to_string(s));
    const ValueId g_next =
        bb.emit(Opcode::kSub, {g[i], kg}, "gq" + std::to_string(s + 1));
    bb.output(g_next);  // Next-sample state, live-out.
    f = f_next;
  }
  bb.output(f);
  return bb;
}

BasicBlock make_lms(int taps) {
  BasicBlock bb("lms" + std::to_string(taps));
  std::vector<ValueId> x(static_cast<std::size_t>(taps));
  std::vector<ValueId> w(static_cast<std::size_t>(taps));
  for (int k = 0; k < taps; ++k) {
    x[static_cast<std::size_t>(k)] = bb.input("x" + std::to_string(k));
    w[static_cast<std::size_t>(k)] = bb.input("w" + std::to_string(k));
  }
  const ValueId desired = bb.input("d");
  const ValueId mu = bb.input("mu");

  // y = sum w_k * x_k.
  ValueId y = bb.emit(Opcode::kMul, {w[0], x[0]}, "y0");
  for (int k = 1; k < taps; ++k) {
    y = bb.emit(Opcode::kMac,
                {w[static_cast<std::size_t>(k)],
                 x[static_cast<std::size_t>(k)], y},
                "y" + std::to_string(k));
  }
  bb.output(y);

  // e = d - y; step = mu * e (shifted down to stay in range).
  const ValueId e = bb.emit(Opcode::kSub, {desired, y}, "e");
  const ValueId mue = bb.emit(Opcode::kMul, {mu, e}, "mue");
  const ValueId step =
      bb.emit(Opcode::kShr, {mue, bb.constant(8, "shift")}, "step");

  // Coefficient updates, all live-out.
  for (int k = 0; k < taps; ++k) {
    const auto i = static_cast<std::size_t>(k);
    const ValueId w_next = bb.emit(Opcode::kMac, {step, x[i], w[i]},
                                   "wn" + std::to_string(k));
    bb.output(w_next);
  }
  return bb;
}

BasicBlock make_viterbi_acs() {
  BasicBlock bb("viterbi_acs");
  const ValueId pm0 = bb.input("pm0");  // Path metrics.
  const ValueId pm1 = bb.input("pm1");
  const ValueId bm00 = bb.input("bm00");  // Branch metrics.
  const ValueId bm01 = bb.input("bm01");
  const ValueId bm10 = bb.input("bm10");
  const ValueId bm11 = bb.input("bm11");

  const ValueId a0 = bb.emit(Opcode::kAdd, {pm0, bm00}, "a0");
  const ValueId a1 = bb.emit(Opcode::kAdd, {pm1, bm10}, "a1");
  const ValueId b0 = bb.emit(Opcode::kAdd, {pm0, bm01}, "b0");
  const ValueId b1 = bb.emit(Opcode::kAdd, {pm1, bm11}, "b1");
  const ValueId new0 = bb.emit(Opcode::kMin, {a0, a1}, "new0");
  const ValueId new1 = bb.emit(Opcode::kMin, {b0, b1}, "new1");
  // Survivor decisions (sign of the metric differences).
  const ValueId d0 = bb.emit(Opcode::kSub, {a0, a1}, "d0");
  const ValueId d1 = bb.emit(Opcode::kSub, {b0, b1}, "d1");
  bb.output(new0);
  bb.output(new1);
  bb.output(d0);
  bb.output(d1);
  return bb;
}

BasicBlock make_goertzel(int iterations) {
  BasicBlock bb("goertzel" + std::to_string(iterations));
  ValueId s1 = bb.input("s1");
  ValueId s2 = bb.input("s2");
  const ValueId coeff = bb.input("coeff");  // 2*cos(w), tuner-provided.
  for (int i = 0; i < iterations; ++i) {
    const ValueId x = bb.input("x" + std::to_string(i));
    const ValueId cs = bb.emit(Opcode::kMul, {coeff, s1},
                               "cs" + std::to_string(i));
    const ValueId shifted = bb.emit(Opcode::kShr,
                                    {cs, bb.constant(8, "q")},
                                    "csq" + std::to_string(i));
    const ValueId t = bb.emit(Opcode::kSub, {shifted, s2},
                              "t" + std::to_string(i));
    const ValueId s = bb.emit(Opcode::kAdd, {t, x},
                              "s" + std::to_string(i));
    s2 = s1;
    s1 = s;
  }
  bb.output(s1);
  bb.output(s2);
  return bb;
}

BasicBlock make_rsp(int taps) {
  // Complex matched filter over I/Q samples, Doppler mix, squared
  // magnitude, CFAR threshold. All inputs are data (coefficients arrive
  // from a tracking loop, so they are variables, not immediates).
  BasicBlock bb("rsp" + std::to_string(taps));
  std::vector<ValueId> xi(static_cast<std::size_t>(taps));
  std::vector<ValueId> xq(static_cast<std::size_t>(taps));
  std::vector<ValueId> ci(static_cast<std::size_t>(taps));
  std::vector<ValueId> cq(static_cast<std::size_t>(taps));
  for (int k = 0; k < taps; ++k) {
    xi[static_cast<std::size_t>(k)] = bb.input("xi" + std::to_string(k));
    xq[static_cast<std::size_t>(k)] = bb.input("xq" + std::to_string(k));
    ci[static_cast<std::size_t>(k)] = bb.input("ci" + std::to_string(k));
    cq[static_cast<std::size_t>(k)] = bb.input("cq" + std::to_string(k));
  }
  const ValueId dop_r = bb.input("dop_r");
  const ValueId dop_i = bb.input("dop_i");
  const ValueId noise = bb.input("noise");

  // yi = sum(xi*ci - xq*cq), yq = sum(xi*cq + xq*ci).
  ValueId yi = ir::kNoValue;
  ValueId yq = ir::kNoValue;
  for (int k = 0; k < taps; ++k) {
    const auto ks = static_cast<std::size_t>(k);
    const ValueId pii =
        bb.emit(Opcode::kMul, {xi[ks], ci[ks]}, "pii" + std::to_string(k));
    const ValueId pqq =
        bb.emit(Opcode::kMul, {xq[ks], cq[ks]}, "pqq" + std::to_string(k));
    const ValueId piq =
        bb.emit(Opcode::kMul, {xi[ks], cq[ks]}, "piq" + std::to_string(k));
    const ValueId pqi =
        bb.emit(Opcode::kMul, {xq[ks], ci[ks]}, "pqi" + std::to_string(k));
    const ValueId ti =
        bb.emit(Opcode::kSub, {pii, pqq}, "ti" + std::to_string(k));
    const ValueId tq =
        bb.emit(Opcode::kAdd, {piq, pqi}, "tq" + std::to_string(k));
    yi = k == 0 ? ti
                : bb.emit(Opcode::kAdd, {yi, ti}, "yi" + std::to_string(k));
    yq = k == 0 ? tq
                : bb.emit(Opcode::kAdd, {yq, tq}, "yq" + std::to_string(k));
  }

  // Doppler mix: z = y * dop (complex).
  const ValueId zr0 = bb.emit(Opcode::kMul, {yi, dop_r}, "zr0");
  const ValueId zr1 = bb.emit(Opcode::kMul, {yq, dop_i}, "zr1");
  const ValueId zi0 = bb.emit(Opcode::kMul, {yi, dop_i}, "zi0");
  const ValueId zi1 = bb.emit(Opcode::kMul, {yq, dop_r}, "zi1");
  const ValueId zr = bb.emit(Opcode::kSub, {zr0, zr1}, "zr");
  const ValueId zi = bb.emit(Opcode::kAdd, {zi0, zi1}, "zi");

  // Squared magnitude and threshold.
  const ValueId mr = bb.emit(Opcode::kMul, {zr, zr}, "mr");
  const ValueId mi = bb.emit(Opcode::kMul, {zi, zi}, "mi");
  const ValueId mag = bb.emit(Opcode::kAdd, {mr, mi}, "mag");
  const ValueId over = bb.emit(Opcode::kSub, {mag, noise}, "over");
  const ValueId det = bb.emit(Opcode::kMax, {over, bb.constant(0, "zero")},
                              "det");
  bb.output(det);
  bb.output(mag);  // Logged for the tracking loop.
  return bb;
}

std::vector<std::vector<std::int64_t>> correlated_inputs(
    const ir::BasicBlock& bb, int samples, Stimulus stimulus,
    std::uint64_t seed) {
  if (stimulus == Stimulus::kUniform) {
    return random_inputs(bb, samples, seed);
  }
  int num_inputs = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == Opcode::kInput) ++num_inputs;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> phase(0.0, 6.28318530718);
  std::uniform_real_distribution<double> freq(0.02, 0.2);
  std::normal_distribution<double> noise(0.0, 1500.0);
  std::uniform_int_distribution<std::int64_t> start(-8000, 8000);
  std::uniform_int_distribution<std::int64_t> slope(-13, 13);

  std::vector<std::vector<std::int64_t>> rows(
      static_cast<std::size_t>(samples),
      std::vector<std::int64_t>(static_cast<std::size_t>(num_inputs)));
  for (int i = 0; i < num_inputs; ++i) {
    const auto col = static_cast<std::size_t>(i);
    switch (stimulus) {
      case Stimulus::kSine: {
        const double p = phase(rng);
        const double f = freq(rng);
        for (int s = 0; s < samples; ++s) {
          rows[static_cast<std::size_t>(s)][col] = static_cast<std::int64_t>(
              12000.0 * std::sin(p + f * s));
        }
        break;
      }
      case Stimulus::kAr1: {
        double value = 0;
        for (int s = 0; s < samples; ++s) {
          value = 0.95 * value + noise(rng);
          rows[static_cast<std::size_t>(s)][col] =
              static_cast<std::int64_t>(value);
        }
        break;
      }
      case Stimulus::kRamp: {
        std::int64_t value = start(rng);
        const std::int64_t step = slope(rng);
        for (int s = 0; s < samples; ++s) {
          rows[static_cast<std::size_t>(s)][col] = value;
          value += step;
        }
        break;
      }
      case Stimulus::kUniform:
        break;  // Handled above.
    }
  }
  return rows;
}

std::vector<std::vector<std::int64_t>> random_inputs(const ir::BasicBlock& bb,
                                                     int samples,
                                                     std::uint64_t seed) {
  int num_inputs = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == Opcode::kInput) ++num_inputs;
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(-32768, 32767);
  std::vector<std::vector<std::int64_t>> rows(
      static_cast<std::size_t>(samples));
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(num_inputs));
    for (auto& v : row) v = dist(rng);
  }
  return rows;
}

}  // namespace lera::workloads
