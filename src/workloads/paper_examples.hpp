#pragma once

#include "alloc/problem.hpp"

/// \file paper_examples.hpp
/// Reconstructions of the paper's hand examples (Figures 1, 3 and 4).
///
/// Figure 3 reconstruction. The paper lists transition activities
///   a->b 0.2, a->f 0.5, e->b 0.6, e->f 0.3, b->c 0.8, d->e 0.1
/// and reports that the previous-research register allocation binds
/// chains {a,b,c} and {d,e,f} with total switching 2.4 (0.5 per chain
/// "at time 0"). The lifetimes below reproduce that arc set *exactly*
/// under the density-region construction: with
///   a=[1,3] b=[3,5] c=[5,7] d=[1,2] e=[2,3] f=[3,7]
/// every boundary 1..6 has the maximum density 2, so the only legal
/// transitions are the zero-idle ones — precisely the six listed pairs.
///
/// Figure 4 reconstruction. The arc list adds f->b 0.5, so f must die
/// before b is written; the figure's bottom marks suggest later times
/// 6/8. We use a=[1,3] d=[1,2] e=[2,3] f=[3,6] b=[6,8] c=[8,9]; the
/// maximum density 2 occurs at boundaries 1-2 only, so the all-pairs
/// graph of [8] may idle a register across the peak (costing an extra
/// memory location, the paper's Figure 4b observation) while the
/// density-region graph may not.

namespace lera::workloads {

/// Lifetimes and activity table of Figure 3 (R = 1 register).
alloc::AllocationProblem figure3_problem(
    const energy::EnergyParams& params = {});

struct Figure4Options {
  energy::EnergyParams params;
  /// Figure 4c: split the long-lived f so a register can carry part of
  /// it while the rest sits in memory.
  bool split_f = false;
};

/// Lifetimes and activity table of Figure 4 (R = 1 register).
alloc::AllocationProblem figure4_problem(const Figure4Options& opts = {});

/// The Figure 1 lifetimes (a..e over 7 control steps, c and d live-out),
/// used by construction unit tests.
std::vector<lifetime::Lifetime> figure1_lifetimes();

}  // namespace lera::workloads
