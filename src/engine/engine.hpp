#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/fingerprint.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/ports.hpp"
#include "audit/report.hpp"
#include "engine/alloc_cache.hpp"
#include "engine/thread_pool.hpp"
#include "ir/task_graph.hpp"
#include "netflow/cancel.hpp"
#include "netflow/membudget.hpp"
#include "netflow/warm.hpp"
#include "netflow/workspace.hpp"
#include "sched/schedule.hpp"

/// \file engine.hpp
/// The parallel allocation engine: one front door for every batched
/// solve in the system. The paper (§5) applies the network-flow
/// allocator "to each basic block in each task" — those per-task solves
/// are independent, as are the schedule candidates of an exploration and
/// the instances of a design sweep, so the Engine fans them out across a
/// thread pool while guaranteeing *bit-identical* results to the
/// sequential code path: work item i always lands in result slot i, and
/// every aggregation runs sequentially in a fixed order.
///
/// Construct an Engine once from EngineOptions (the unified option core
/// that PipelineOptions / ExploreOptions used to copy-paste), then:
///
///   engine::Engine eng(opts);
///   engine::PipelineReport rep = eng.run(task_graph);
///   engine::ExploreResult  exp = eng.explore(bb);
///   auto results = eng.allocate_batch(problems);
///   engine::Session s = eng.open_session();   // incremental batching
///
/// The legacy free functions pipeline::run_pipeline and
/// pipeline::explore_schedules are thin wrappers over this API.

namespace lera::engine {

/// Unified option core. Absorbs the fields that were duplicated across
/// pipeline::PipelineOptions, pipeline::ExploreOptions and the bench
/// mains: the solve core (num_registers / params / split / alloc) is
/// specified once, here, and every Engine entry point reads it.
struct EngineOptions {
  // --- Shared solve core ------------------------------------------------
  int num_registers = 4;
  energy::EnergyParams params;
  lifetime::SplitOptions split;
  alloc::AllocatorOptions alloc;

  // --- Execution --------------------------------------------------------
  /// Worker threads for batched solves. 0 = all hardware threads;
  /// 1 = strictly sequential on the caller's thread (no pool). Results
  /// are identical for every value — threads only buy wall clock.
  int threads = 0;

  // --- run(): scheduling + activity tracing -----------------------------
  sched::Resources resources{2, 1};
  /// Input samples used to measure Hamming activities (0 = use the
  /// default 0.5 activities instead of simulating).
  int trace_samples = 32;
  /// Per-task trace seeds are derived as trace_seed + task_id, so the
  /// measured activities do not depend on which thread runs the task.
  std::uint64_t trace_seed = 1;
  /// Run the second-stage memory reallocation flow per task.
  bool relayout_memory = true;
  /// Degrade a task to the two-phase baseline when its flow solve fails
  /// (bad instance, budget, certification), instead of marking the whole
  /// run infeasible. Downgrades are counted in PipelineReport and
  /// flagged per task; heavy-traffic runs fail loud, not wrong.
  bool degrade_on_solver_failure = true;

  // --- Auditing ---------------------------------------------------------
  /// Independent re-derivation of every solve's legality (and, at
  /// kFullCost, its energy accounting) by audit::audit_result. Findings
  /// land in AllocationResult::audit / TaskReport::audit; they never
  /// alter the allocation or tear down sibling solves, and kOff is
  /// bit-identical to the pre-audit engine.
  audit::AuditLevel audit_level = audit::AuditLevel::kOff;
  /// Optional §7 port budgets the auditor enforces on every result.
  std::optional<alloc::PortLimits> audit_ports;

  // --- explore(): schedule candidate generation -------------------------
  /// Latest acceptable schedule length in cycles (0 = no length limit).
  /// Unrelated to the wall-clock deadlines below.
  int deadline = 0;
  /// Resource sweeps for the list scheduler.
  std::vector<sched::Resources> resource_options{{1, 1}, {2, 1}, {2, 2}};
  /// Extra latency slack levels for force-directed schedules.
  std::vector<int> slack_options{0, 2, 4};

  // --- Supervision: deadlines, retry, circuit breaking ------------------
  /// With every knob here at its default, the engine's output is
  /// bit-identical to the unsupervised engine — the supervision layer
  /// only ever observes the solve path until a knob turns it on.
  ///
  /// Wall-clock budget for one solve request, in seconds (0 = none).
  /// Counted from when the request's task starts (run/explore) or from
  /// submission (Session::submit). An overrunning flow solve is
  /// cancelled and — under degrade_on_solver_failure / the allocator's
  /// fallback_to_baseline — degraded to the two-phase baseline, flagged
  /// timed_out + degraded: an anytime answer, never a silent hang.
  double task_deadline_seconds = 0;
  /// Wall-clock budget for one whole run()/explore()/allocate_batch()
  /// call, in seconds (0 = none). When it expires mid-run, work not yet
  /// started is skipped (flagged timed_out) and in-flight solves wind
  /// down as for task_deadline_seconds; the partial report still
  /// aggregates everything that did finish.
  double run_deadline_seconds = 0;
  /// Transient-failure retries per solver: re-run a solver whose answer
  /// flunked certification up to this many times before falling through
  /// the chain (netflow::SolveOptions::max_retries_per_solver).
  int solver_retries = 0;
  /// Base of the seeded jittered exponential backoff between retries.
  double retry_backoff_seconds = 0;
  /// Seed of the backoff jitter.
  std::uint64_t retry_seed = 1;
  /// Consecutive certification failures after which a solver's circuit
  /// breaker opens and the engine skips it in subsequent solves
  /// (netflow::CircuitBreaker). 0 = no breaker.
  int breaker_threshold = 0;

  // --- Memory budgeting -------------------------------------------------
  /// Byte cap for one solve request (0 = none). Each solve gets a child
  /// of the engine-wide budget with this cap; a backend whose predicted
  /// footprint does not fit is skipped (kMemoryExceeded) and — under
  /// degrade_on_solver_failure / fallback_to_baseline — the request
  /// degrades to the two-phase baseline, flagged memory_exceeded +
  /// degraded: a typed verdict, never an OOM kill.
  std::int64_t max_bytes_per_solve = 0;
  /// Byte cap shared by every concurrent solve plus the pooled
  /// workspaces of the context bank (0 = track-only: peak/in-use bytes
  /// still show up in EngineStats and the server's HEALTH line, but
  /// nothing is ever refused).
  std::int64_t max_bytes_total = 0;

  // --- Solver workspaces and warm starts --------------------------------
  /// Lease every solve a reusable netflow::SolverWorkspace from the
  /// engine's context bank, so repeated solves stop paying per-solve
  /// allocation. Bit-identical to running without one (a workspace only
  /// changes allocation behavior), so it defaults on.
  bool reuse_workspaces = true;
  /// Also lease each solve a netflow::WarmStartCache and let same-
  /// topology re-submissions resolve from the previous optimal flow.
  /// Warm answers are always re-certified, but they may pick a
  /// *different* equal-cost optimum than a cold solve, so this is
  /// opt-in: the default engine stays bit-identical across runs and
  /// thread counts. Warm caches are pooled per context and keyed by the
  /// problem's structural fingerprint, so alternating topologies in one
  /// stream no longer thrash a single cache.
  bool warm_start = false;

  // --- Allocation cache (fingerprint -> certified result) ---------------
  /// Entry cap of the engine's AllocCache (0 = cache off; the default,
  /// which is bit-identical to the pre-cache engine). When on,
  /// allocate_batch and Session solves consult the cache by canonical
  /// fingerprint before solving and record certified answers after.
  std::size_t cache_entries = 0;
  /// Byte cap over all cached entries (0 = entry cap only). Cached
  /// bytes are charged against the engine-wide memory budget, so they
  /// show up in EngineStats and count against max_bytes_total.
  std::int64_t cache_bytes = 0;
  /// Re-audit every Nth cache hit before serving it (see
  /// AllocCacheOptions::audit_rate). 0 = never.
  std::uint32_t cache_audit_rate = 16;
};

/// Snapshot of the engine's supervision counters (Engine::stats()).
/// "Solves" are allocator calls the engine issued: one per task in
/// run(), one per candidate in explore(), one per problem in
/// allocate_batch() / Session::submit. Work skipped outright (run
/// deadline expired before start) is not a started solve.
struct EngineStats {
  std::int64_t solves_started = 0;
  std::int64_t solves_completed = 0;
  /// Completed solves a CancelToken withdrew (session cancel / engine
  /// shutdown); always also counted in solves_completed.
  std::int64_t solves_cancelled = 0;
  /// Completed solves whose flow phase ran out of wall clock.
  std::int64_t solves_timed_out = 0;
  /// Completed solves answered by the two-phase baseline.
  std::int64_t solves_degraded = 0;
  /// Transient-failure re-runs summed over all solves.
  std::int64_t solves_retried = 0;
  /// Completed solves a memory budget (or a real allocation failure)
  /// curtailed (AllocationResult::memory_exceeded); like timed_out, a
  /// memory-exceeded solve may still be feasible via the baseline.
  std::int64_t solves_memory_exceeded = 0;
  /// Bytes currently charged against the engine-wide memory budget
  /// (in-flight solves + pooled workspaces).
  std::int64_t memory_bytes_in_use = 0;
  /// High-water mark of memory_bytes_in_use over the engine's lifetime.
  std::int64_t memory_peak_bytes = 0;
  /// Charges the engine-wide budget refused (0 when max_bytes_total is
  /// 0 — per-solve denials land in solves_memory_exceeded instead).
  std::int64_t memory_denials = 0;
  /// Solvers whose circuit breaker is currently open (display names;
  /// empty when breaker_threshold is 0).
  std::vector<std::string> open_breakers;
  int breaker_threshold = 0;
  /// Solver-level performance counters summed over every completed
  /// solve (augmentations, heap traffic, workspace/warm-start hits,
  /// per-phase wall time); see netflow::PerfCounters. The cache_*
  /// counters below are mirrored into perf as well.
  netflow::PerfCounters perf;
  /// Allocation-cache counters (all 0 when cache_entries is 0).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_insertions = 0;
  std::int64_t cache_evictions = 0;
  std::int64_t cache_audit_samples = 0;
  std::int64_t cache_audit_evictions = 0;
  std::int64_t cache_bytes_in_use = 0;
  std::int64_t cache_entries = 0;
};

namespace detail {
/// Lock-free counters behind EngineStats, shared (by shared_ptr) with
/// queued Session jobs so they outlive any one handle.
struct EngineStatsCore {
  std::atomic<std::int64_t> started{0};
  std::atomic<std::int64_t> completed{0};
  std::atomic<std::int64_t> cancelled{0};
  std::atomic<std::int64_t> timed_out{0};
  std::atomic<std::int64_t> degraded{0};
  std::atomic<std::int64_t> retried{0};
  std::atomic<std::int64_t> memory_exceeded{0};
  /// Atomic mirror of netflow::PerfCounters, harvested from each
  /// solve's diagnostics as it completes.
  std::atomic<std::int64_t> perf_solves{0};
  std::atomic<std::int64_t> perf_augmentations{0};
  std::atomic<std::int64_t> perf_settles{0};
  std::atomic<std::int64_t> perf_heap_pushes{0};
  std::atomic<std::int64_t> perf_heap_pops{0};
  std::atomic<std::int64_t> perf_pivots{0};
  std::atomic<std::int64_t> perf_cs_phases{0};
  std::atomic<std::int64_t> perf_cs_pushes{0};
  std::atomic<std::int64_t> perf_cs_relabels{0};
  std::atomic<std::int64_t> perf_price_refinements{0};
  std::atomic<std::int64_t> perf_auto_selections{0};
  std::atomic<std::int64_t> perf_workspace_reuse{0};
  std::atomic<std::int64_t> perf_warm_hits{0};
  std::atomic<std::int64_t> perf_warm_misses{0};
  std::atomic<std::int64_t> perf_validate_ns{0};
  std::atomic<std::int64_t> perf_solve_ns{0};
  std::atomic<std::int64_t> perf_certify_ns{0};
  std::atomic<std::int64_t> perf_mem_charged{0};
  std::atomic<std::int64_t> perf_mem_denials{0};
  /// Max-merged (not summed): the largest per-solve budget peak seen.
  std::atomic<std::int64_t> perf_mem_peak{0};
};

/// A leased per-solve context: one solver workspace plus a small pool
/// of warm-start caches keyed by structural fingerprint (so a stream
/// that alternates between topologies keeps a warm flow for each
/// instead of thrashing one cache). Belongs to exactly one in-flight
/// solve at a time; the bank below enforces that by handing out
/// exclusive ownership.
struct SolveContext {
  netflow::SolverWorkspace workspace;
  netflow::WarmStartPool warm_pool{8};
};

/// Mutex-guarded freelist of SolveContexts, shared (by shared_ptr) with
/// queued Session jobs. The pool has no thread identity to key on, so
/// solves check a context out for their duration instead: at most
/// pool-width contexts ever exist, each used strictly sequentially —
/// which is exactly the SolverWorkspace ownership contract.
///
/// Pooled (idle) contexts retain their grown scratch arenas, so their
/// measured footprint is charged against the engine-wide memory budget
/// while they sit in the freelist: retained bytes show up in
/// EngineStats and count against max_bytes_total. A context the budget
/// refuses to pool is dropped (freed) instead — under memory pressure
/// the bank sheds capacity rather than busting the cap.
class ContextBank {
 public:
  /// Installs the engine-wide budget idle contexts are charged against.
  /// Call before the first release(); an inert budget tracks nothing.
  void set_budget(netflow::MemoryBudget budget) {
    std::lock_guard<std::mutex> lock(mutex_);
    budget_ = std::move(budget);
  }

  std::unique_ptr<SolveContext> acquire() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (free_.empty()) return std::make_unique<SolveContext>();
    std::unique_ptr<SolveContext> ctx = std::move(free_.back());
    free_.pop_back();
    budget_.release(charged_.back());
    charged_.pop_back();
    return ctx;
  }

  void release(std::unique_ptr<SolveContext> ctx) {
    if (ctx == nullptr) return;
    const std::int64_t bytes = ctx->workspace.footprint_bytes();
    std::lock_guard<std::mutex> lock(mutex_);
    if (!budget_.try_charge(bytes)) return;  // Shed: free, don't pool.
    free_.push_back(std::move(ctx));
    charged_.push_back(bytes);
  }

 private:
  std::mutex mutex_;
  netflow::MemoryBudget budget_;
  std::vector<std::unique_ptr<SolveContext>> free_;
  /// Bytes charged for free_[i]; kept in lockstep with free_.
  std::vector<std::int64_t> charged_;
};
}  // namespace detail

struct TaskReport {
  ir::TaskId task = -1;
  std::string name;
  /// Mirror of result.feasible, hoisted so batch callers can scan for
  /// failures without digging into the allocation result.
  bool feasible = false;
  /// Why this task failed (empty when feasible): the allocator's
  /// diagnostic message, e.g. which resource could not be covered.
  std::string failure_reason;
  /// A wall-clock deadline curtailed this task: its solve was skipped or
  /// degraded, or its relayout was skipped (mirrors result.timed_out
  /// plus the skipped-outright cases). See PipelineReport::timed_out_tasks.
  bool timed_out = false;
  int schedule_length = 0;
  int max_density = 0;
  alloc::AllocationResult result;
  alloc::MemoryLayout layout;
  /// One-line robust-solve story for this task's allocation (solver
  /// used, fallbacks, certification verdict); see also
  /// result.solve_diagnostics for the full structure.
  std::string solve_summary;
  /// Mirror of result.audit (the independent auditor's verdict), hoisted
  /// like `feasible` so batch callers can scan without digging.
  audit::AuditReport audit;
};

struct PipelineReport {
  std::vector<TaskReport> tasks;
  bool all_feasible = true;
  /// Ids of the tasks whose allocation failed, in topological order
  /// (empty when all_feasible). TaskReport::failure_reason says why.
  std::vector<ir::TaskId> infeasible_tasks;

  /// Solver-robustness accounting across the run: tasks that fell back
  /// to the two-phase baseline, and solver fallbacks taken inside the
  /// flow solves that did succeed.
  int tasks_degraded = 0;
  int total_solver_fallbacks = 0;
  /// Tasks a wall-clock deadline curtailed (TaskReport::timed_out), in
  /// topological order. A timed-out task may still be feasible — the
  /// anytime contract degrades it to the baseline when possible — so
  /// this is disjoint bookkeeping from infeasible_tasks.
  int tasks_timed_out = 0;
  std::vector<ir::TaskId> timed_out_tasks;
  /// Tasks whose independent audit reported findings (0 when
  /// EngineOptions::audit_level is kOff).
  int tasks_with_audit_findings = 0;

  double total_static_energy = 0;
  double total_activity_energy = 0;
  int total_mem_accesses = 0;
  int total_reg_accesses = 0;
  /// Largest per-task memory image: the memory must be sized for the
  /// worst task (tasks execute in sequence, addresses are reused).
  int peak_mem_locations = 0;
  /// Largest port requirement over all tasks.
  int peak_mem_read_ports = 0;
  int peak_mem_write_ports = 0;
};

struct ScheduleCandidate {
  std::string label;
  sched::Schedule schedule;
  int length = 0;
  int max_density = 0;
  double energy = 0;       ///< Storage energy of the optimal allocation.
  bool feasible = false;
};

struct ExploreResult {
  std::vector<ScheduleCandidate> candidates;  ///< All evaluated.
  int best = -1;  ///< Index of the cheapest feasible candidate (or -1).
};

class Engine;

/// Lifecycle of one Session ticket. Every ticket reaches a terminal
/// state (kDone or kCancelled) even across cancellation and engine
/// shutdown: cancelled jobs still run, fast-exit at their first poll,
/// and publish a result with AllocationResult::cancelled set.
enum class TicketStatus {
  kPending,    ///< Queued, not yet picked up by a worker.
  kRunning,    ///< A worker is solving it right now.
  kDone,       ///< Result available (possibly timed-out/degraded).
  kCancelled,  ///< Cancellation requested or already took effect; the
               ///< result (once done) carries cancelled=true.
};

std::string to_string(TicketStatus status);

/// Incremental batched solving: submit problems as they become
/// available, read results by ticket. Work starts immediately on the
/// Engine's pool; results are indexed by submission order, never by
/// completion order. A Session must not outlive its Engine.
///
/// Supervision: every ticket carries its own CancelToken, chained
/// session -> engine, so cancel(ticket) withdraws one solve,
/// cancel_all() the whole session, and destroying the Engine the whole
/// world — in-flight solves wind down cooperatively at their next
/// guard poll rather than blocking to completion.
class Session {
 public:
  Session(Session&&) = default;
  Session& operator=(Session&&) = default;

  /// Enqueues one allocation solve; returns its ticket (the submission
  /// index, dense from 0). The request inherits the engine's
  /// task_deadline_seconds (counted from submission, queue wait
  /// included).
  std::size_t submit(alloc::AllocationProblem problem);

  /// \overload with an explicit per-request deadline in seconds from
  /// submission; <= 0 falls back to the engine's task_deadline_seconds.
  std::size_t submit(alloc::AllocationProblem problem,
                     double deadline_seconds);

  std::size_t submitted() const;

  /// Blocks until the solve behind \p ticket finishes. The reference is
  /// valid until the Session is destroyed.
  const alloc::AllocationResult& result(std::size_t ticket) const;

  /// Non-blocking peek: the result if \p ticket already finished,
  /// nullptr otherwise (including unknown tickets).
  const alloc::AllocationResult* try_result(std::size_t ticket) const;

  /// Blocks until \p ticket finishes or \p seconds elapse; true when
  /// the result is available.
  bool wait_for(std::size_t ticket, double seconds) const;

  TicketStatus status(std::size_t ticket) const;

  /// Withdraws one request. Queued jobs fast-exit when a worker reaches
  /// them; a running solve stops at its next guard poll. Idempotent;
  /// too late to matter once the ticket is done.
  void cancel(std::size_t ticket);

  /// Withdraws every request of this session, current and future.
  void cancel_all();

  /// Blocks until every submitted solve finishes and returns all
  /// results in submission order (cancelled tickets included, flagged
  /// on the result).
  std::vector<alloc::AllocationResult> collect();

 private:
  friend class Engine;
  struct State;
  explicit Session(const Engine& engine);

  const Engine* engine_;
  std::shared_ptr<State> state_;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  /// Graceful drain: fires the engine-wide shutdown token (every queued
  /// or in-flight solve — Session jobs included — winds down at its
  /// next poll), then joins the pool. Never blocks on a full solve.
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const EngineOptions& options() const { return options_; }
  /// Resolved thread count (options.threads with 0 expanded).
  int threads() const { return pool_->size(); }

  /// The paper's §5 methodology over a whole task graph: schedule every
  /// task, measure activities, allocate per block, re-pack memory, and
  /// aggregate. Task solves run in parallel; the report is bit-identical
  /// to a threads=1 run (and to the legacy pipeline::run_pipeline).
  PipelineReport run(const ir::TaskGraph& graph) const;

  /// Schedule/allocation co-exploration of one block: evaluates every
  /// list-schedule and force-directed candidate (in parallel) and marks
  /// the cheapest-energy feasible one.
  ExploreResult explore(const ir::BasicBlock& bb) const;

  /// Solves every problem with the engine's allocator options; results
  /// are in input order.
  std::vector<alloc::AllocationResult> allocate_batch(
      const std::vector<alloc::AllocationProblem>& problems) const;

  /// Opens an incremental batching session (see Session).
  Session open_session() const { return Session(*this); }

  /// Snapshot of the supervision counters and breaker state. Counters
  /// are monotonic over the engine's lifetime and shared by every entry
  /// point and session.
  EngineStats stats() const;

  /// The engine-wide shutdown token (parent of every session token).
  /// Exposed so callers can chain their own tokens under the engine's
  /// lifetime; fired by ~Engine.
  netflow::CancelToken shutdown_token() const { return shutdown_; }

  /// The engine-wide memory budget (capped by max_bytes_total, track-
  /// only when that is 0). Every solve charges a child of it; the server
  /// reads used()/peak()/remaining() for HEALTH and admission.
  netflow::MemoryBudget memory_budget() const { return memory_budget_; }

 private:
  friend class Session;

  EngineOptions options_;
  netflow::CancelToken shutdown_{netflow::CancelToken::make()};
  /// Root of every per-solve budget chain; also charged for the context
  /// bank's pooled workspaces.
  netflow::MemoryBudget memory_budget_;
  /// Non-null when options_.breaker_threshold > 0; shared with queued
  /// Session jobs so it outlives any one handle.
  std::shared_ptr<netflow::CircuitBreaker> breaker_;
  std::shared_ptr<detail::EngineStatsCore> stats_core_;
  /// Non-null when reuse_workspaces or warm_start is set; shared with
  /// queued Session jobs like the breaker and stats core.
  std::shared_ptr<detail::ContextBank> bank_;
  /// Non-null when cache_entries > 0; shared with queued Session jobs.
  /// Entry bytes are charged against a child of memory_budget_.
  std::shared_ptr<AllocCache> cache_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lera::engine
