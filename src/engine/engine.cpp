#include "engine/engine.hpp"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <random>

#include "audit/audit.hpp"
#include "sched/force_directed.hpp"

namespace lera::engine {

namespace {

/// The supervision state one Engine entry point threads into its
/// solves: the run-wide deadline (armed at entry), the cancel token the
/// solves observe, and the shared breaker/stats. All observation-only
/// until a knob is set — a default Supervision leaves the solve path
/// bit-identical to the unsupervised engine.
struct Supervision {
  netflow::Deadline run_deadline;
  netflow::CancelToken cancel;
  netflow::CircuitBreaker* breaker = nullptr;
  detail::EngineStatsCore* stats = nullptr;
  detail::ContextBank* bank = nullptr;
  /// Engine-wide memory budget; every solve charges a child of it.
  netflow::MemoryBudget memory_budget;
};

/// Checks a SolveContext out of the bank for one allocator call and
/// threads it into the solve options; returns it on destruction. With a
/// null bank (both knobs off) this is a no-op and the solve path is
/// untouched. When warm starts are on and the problem is known, the
/// warm cache is picked from the context's keyed pool by the problem's
/// structural fingerprint, so each flow topology warms independently.
class ContextLease {
 public:
  ContextLease(detail::ContextBank* bank, const EngineOptions& o,
               alloc::AllocatorOptions& a,
               const alloc::AllocationProblem* p = nullptr)
      : bank_(bank) {
    if (bank_ == nullptr) return;
    ctx_ = bank_->acquire();
    if (o.reuse_workspaces) a.solve.workspace = &ctx_->workspace;
    if (o.warm_start) {
      const std::uint64_t key =
          p != nullptr ? alloc::fingerprint_problem(*p).structural : 0;
      a.solve.warm_cache = ctx_->warm_pool.acquire(key);
    }
  }

  ~ContextLease() {
    if (bank_ != nullptr) bank_->release(std::move(ctx_));
  }

  ContextLease(const ContextLease&) = delete;
  ContextLease& operator=(const ContextLease&) = delete;

 private:
  detail::ContextBank* bank_;
  std::unique_ptr<detail::SolveContext> ctx_;
};

/// Arms the run-wide deadline for one entry-point call.
netflow::Deadline run_deadline_of(const EngineOptions& options) {
  return options.run_deadline_seconds > 0
             ? netflow::Deadline::after(options.run_deadline_seconds)
             : netflow::Deadline();
}

/// One request's effective deadline: the tighter of the run-wide
/// deadline and a fresh per-request one.
netflow::Deadline request_deadline(const EngineOptions& options,
                                   const netflow::Deadline& run_deadline) {
  netflow::Deadline d = run_deadline;
  if (options.task_deadline_seconds > 0) {
    d = netflow::Deadline::earlier(
        d, netflow::Deadline::after(options.task_deadline_seconds));
  }
  return d;
}

/// Threads the supervision knobs into one solve's allocator options.
/// Only knobs that are actually set override anything, so a caller's
/// hand-rolled SolveOptions keep working.
void apply_supervision(alloc::AllocatorOptions& a, const EngineOptions& o,
                       const netflow::Deadline& deadline,
                       const netflow::CancelToken& cancel,
                       netflow::CircuitBreaker* breaker,
                       const netflow::MemoryBudget& memory_budget) {
  a.solve.cancel = cancel;
  a.solve.deadline = netflow::Deadline::earlier(a.solve.deadline, deadline);
  if (o.solver_retries > 0) {
    a.solve.max_retries_per_solver = o.solver_retries;
    a.solve.retry_backoff_seconds = o.retry_backoff_seconds;
    a.solve.retry_seed = o.retry_seed;
  }
  if (breaker != nullptr) a.solve.breaker = breaker;
  // Per-solve budget: a child of the engine-wide ledger, capped by
  // max_bytes_per_solve. Inert (tracking nothing) only when the caller
  // already threaded a budget of their own.
  if (!a.solve.memory_budget.valid() && memory_budget.valid()) {
    a.solve.memory_budget = memory_budget.child(o.max_bytes_per_solve);
  }
}

/// Books one finished allocator call into the stats core.
void record_solve(detail::EngineStatsCore* stats,
                  const alloc::AllocationResult& r) {
  if (stats == nullptr) return;
  stats->completed.fetch_add(1, std::memory_order_relaxed);
  if (r.cancelled) stats->cancelled.fetch_add(1, std::memory_order_relaxed);
  if (r.timed_out) stats->timed_out.fetch_add(1, std::memory_order_relaxed);
  if (r.degraded) stats->degraded.fetch_add(1, std::memory_order_relaxed);
  if (r.memory_exceeded) {
    stats->memory_exceeded.fetch_add(1, std::memory_order_relaxed);
  }
  if (r.solve_diagnostics.retries > 0) {
    stats->retried.fetch_add(r.solve_diagnostics.retries,
                             std::memory_order_relaxed);
  }
  const netflow::PerfCounters& p = r.solve_diagnostics.perf;
  const auto bump = [](std::atomic<std::int64_t>& a, std::int64_t v) {
    if (v != 0) a.fetch_add(v, std::memory_order_relaxed);
  };
  bump(stats->perf_solves, p.solves);
  bump(stats->perf_augmentations, p.augmentations);
  bump(stats->perf_settles, p.dijkstra_settles);
  bump(stats->perf_heap_pushes, p.heap_pushes);
  bump(stats->perf_heap_pops, p.heap_pops);
  bump(stats->perf_pivots, p.simplex_pivots);
  bump(stats->perf_cs_phases, p.cs_phases);
  bump(stats->perf_cs_pushes, p.cs_pushes);
  bump(stats->perf_cs_relabels, p.cs_relabels);
  bump(stats->perf_price_refinements, p.price_refinements);
  bump(stats->perf_auto_selections, p.auto_selections);
  bump(stats->perf_workspace_reuse, p.workspace_reuse_hits);
  bump(stats->perf_warm_hits, p.warm_start_hits);
  bump(stats->perf_warm_misses, p.warm_start_misses);
  bump(stats->perf_validate_ns, p.validate_ns);
  bump(stats->perf_solve_ns, p.solve_ns);
  bump(stats->perf_certify_ns, p.certify_ns);
  bump(stats->perf_mem_charged, p.mem_charged_bytes);
  bump(stats->perf_mem_denials, p.mem_denials);
  // Peak is max-merged, not summed (see PerfCounters::add).
  std::int64_t cur = stats->perf_mem_peak.load(std::memory_order_relaxed);
  while (p.mem_peak_bytes > cur &&
         !stats->perf_mem_peak.compare_exchange_weak(
             cur, p.mem_peak_bytes, std::memory_order_relaxed)) {
  }
}

/// Maps the engine's audit knobs onto the auditor and stamps the
/// verdict into the result. Auditing is observation-only: it never
/// alters the allocation, throws, or stops sibling solves, so one bad
/// result in a batch still leaves every other slot intact.
void maybe_audit(const alloc::AllocationProblem& p,
                 alloc::AllocationResult& r,
                 const EngineOptions& options) {
  if (options.audit_level == audit::AuditLevel::kOff) return;
  audit::AuditOptions aopts;
  aopts.level = options.audit_level;
  aopts.ports = options.audit_ports;
  r.audit = audit::audit_result(p, r, aopts);
}

/// Uniform random 16-bit input rows for activity measurement. Seeded per
/// task (trace_seed + task_id), so the trace — and therefore the whole
/// allocation — is a pure function of the task and the options, not of
/// the thread that happens to run it.
std::vector<std::vector<std::int64_t>> make_trace(const ir::BasicBlock& bb,
                                                  int samples,
                                                  std::uint64_t seed) {
  int inputs = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == ir::Opcode::kInput) ++inputs;
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(-32768, 32767);
  std::vector<std::vector<std::int64_t>> rows(
      static_cast<std::size_t>(samples));
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(inputs));
    for (auto& v : row) v = dist(rng);
  }
  return rows;
}

/// One task's end of the §5 methodology: schedule, trace, allocate,
/// re-pack memory. Pure function of (task, options) — safe to run on any
/// thread concurrently with other tasks.
TaskReport solve_task(const ir::Task& task, const EngineOptions& options,
                      const Supervision& sup) {
  TaskReport tr;
  tr.task = task.id;
  tr.name = task.name;

  // Anytime contract: work not yet started when the run deadline fires
  // (or the run is cancelled) is skipped outright and flagged — the
  // report stays partial-but-honest instead of blocking past the
  // deadline on tasks nobody will wait for.
  if (sup.run_deadline.expired()) {
    tr.timed_out = true;
    tr.failure_reason = "run deadline expired before the task started";
    tr.solve_summary = "[skipped: run deadline expired]";
    return tr;
  }
  if (sup.cancel.cancelled()) {
    tr.failure_reason = "cancelled before the task started";
    tr.solve_summary = "[skipped: cancelled]";
    return tr;
  }

  const sched::Schedule schedule =
      sched::list_schedule(task.block, options.resources);
  tr.schedule_length = schedule.length(task.block);

  const auto trace =
      options.trace_samples > 0
          ? make_trace(task.block, options.trace_samples,
                       options.trace_seed +
                           static_cast<std::uint64_t>(task.id))
          : std::vector<std::vector<std::int64_t>>{};
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      task.block, schedule, options.num_registers, options.params, trace,
      options.split);
  tr.max_density = p.max_density();

  const netflow::Deadline deadline =
      request_deadline(options, sup.run_deadline);
  alloc::AllocatorOptions alloc_options = options.alloc;
  alloc_options.fallback_to_baseline =
      alloc_options.fallback_to_baseline ||
      options.degrade_on_solver_failure;
  apply_supervision(alloc_options, options, deadline, sup.cancel,
                    sup.breaker, sup.memory_budget);
  const ContextLease lease(sup.bank, options, alloc_options, &p);
  if (sup.stats != nullptr) {
    sup.stats->started.fetch_add(1, std::memory_order_relaxed);
  }
  tr.result = alloc::allocate(p, alloc_options);
  record_solve(sup.stats, tr.result);
  maybe_audit(p, tr.result, options);
  tr.audit = tr.result.audit;
  tr.feasible = tr.result.feasible;
  tr.timed_out = tr.result.timed_out;
  tr.solve_summary = tr.result.solve_diagnostics.summary();
  if (tr.result.degraded) {
    tr.solve_summary += " [degraded to two-phase baseline]";
  }
  if (tr.result.timed_out) {
    tr.solve_summary += " [timed out]";
  }
  if (!tr.feasible) {
    tr.failure_reason = tr.result.message.empty()
                            ? "allocation infeasible"
                            : tr.result.message;
    tr.solve_summary += " [infeasible: " + tr.failure_reason + "]";
    return tr;
  }

  if (options.relayout_memory) {
    // The relayout flow is not worth starting on an expired deadline;
    // the allocation above is complete and usable without it.
    if (deadline.expired()) {
      tr.timed_out = true;
      tr.solve_summary += " [relayout skipped: deadline expired]";
    } else {
      tr.layout = alloc::optimize_memory_layout(
          p, tr.result.assignment, options.alloc.quantizer,
          options.alloc.solver);
    }
  }
  return tr;
}

/// Candidate evaluation for explore(): schedule is prebuilt (cheap and
/// sequential); the expensive problem build + allocation runs here, on
/// any thread.
ScheduleCandidate evaluate_candidate(const ir::BasicBlock& bb,
                                     ScheduleCandidate c,
                                     const EngineOptions& options,
                                     const Supervision& sup) {
  c.length = c.schedule.length(bb);
  // Same anytime contract as solve_task: candidates not started when
  // the run deadline fires (or the run is cancelled) stay infeasible
  // instead of blocking the explore past its budget.
  if (sup.run_deadline.expired() || sup.cancel.cancelled()) return c;
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, c.schedule, options.num_registers, options.params, {},
      options.split);
  c.max_density = p.max_density();
  alloc::AllocatorOptions alloc_options = options.alloc;
  apply_supervision(alloc_options, options,
                    request_deadline(options, sup.run_deadline), sup.cancel,
                    sup.breaker, sup.memory_budget);
  const ContextLease lease(sup.bank, options, alloc_options, &p);
  if (sup.stats != nullptr) {
    sup.stats->started.fetch_add(1, std::memory_order_relaxed);
  }
  const alloc::AllocationResult r = alloc::allocate(p, alloc_options);
  record_solve(sup.stats, r);
  if (r.feasible && (options.deadline == 0 || c.length <= options.deadline)) {
    c.feasible = true;
    c.energy = r.energy(p);
  }
  return c;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      memory_budget_(netflow::MemoryBudget::make(options_.max_bytes_total)),
      breaker_(options_.breaker_threshold > 0
                   ? std::make_shared<netflow::CircuitBreaker>(
                         options_.breaker_threshold)
                   : nullptr),
      stats_core_(std::make_shared<detail::EngineStatsCore>()),
      bank_(options_.reuse_workspaces || options_.warm_start
                ? std::make_shared<detail::ContextBank>()
                : nullptr),
      cache_(options_.cache_entries > 0
                 ? std::make_shared<AllocCache>(
                       AllocCacheOptions{options_.cache_entries,
                                         options_.cache_bytes,
                                         options_.cache_audit_rate},
                       memory_budget_.child(0))
                 : nullptr),
      pool_(std::make_unique<ThreadPool>(options_.threads)) {
  // Pooled (idle) workspaces count against the engine-wide budget.
  if (bank_ != nullptr) bank_->set_budget(memory_budget_);
}

Engine::~Engine() {
  // Graceful drain: fire the shutdown token first so every queued or
  // in-flight solve (Session jobs included — their tokens chain to this
  // one) winds down at its next poll, then join the pool. The pool
  // destructor runs the remaining queue, so every ticket still reaches
  // a terminal state; it just reaches it fast.
  shutdown_.request_cancel();
  pool_.reset();
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.solves_started = stats_core_->started.load(std::memory_order_relaxed);
  s.solves_completed =
      stats_core_->completed.load(std::memory_order_relaxed);
  s.solves_cancelled =
      stats_core_->cancelled.load(std::memory_order_relaxed);
  s.solves_timed_out =
      stats_core_->timed_out.load(std::memory_order_relaxed);
  s.solves_degraded = stats_core_->degraded.load(std::memory_order_relaxed);
  s.solves_retried = stats_core_->retried.load(std::memory_order_relaxed);
  s.solves_memory_exceeded =
      stats_core_->memory_exceeded.load(std::memory_order_relaxed);
  s.memory_bytes_in_use = memory_budget_.used();
  s.memory_peak_bytes = memory_budget_.peak();
  s.memory_denials = memory_budget_.denials();
  const auto& c = *stats_core_;
  s.perf.solves = c.perf_solves.load(std::memory_order_relaxed);
  s.perf.augmentations =
      c.perf_augmentations.load(std::memory_order_relaxed);
  s.perf.dijkstra_settles = c.perf_settles.load(std::memory_order_relaxed);
  s.perf.heap_pushes = c.perf_heap_pushes.load(std::memory_order_relaxed);
  s.perf.heap_pops = c.perf_heap_pops.load(std::memory_order_relaxed);
  s.perf.simplex_pivots = c.perf_pivots.load(std::memory_order_relaxed);
  s.perf.cs_phases = c.perf_cs_phases.load(std::memory_order_relaxed);
  s.perf.cs_pushes = c.perf_cs_pushes.load(std::memory_order_relaxed);
  s.perf.cs_relabels = c.perf_cs_relabels.load(std::memory_order_relaxed);
  s.perf.price_refinements =
      c.perf_price_refinements.load(std::memory_order_relaxed);
  s.perf.auto_selections =
      c.perf_auto_selections.load(std::memory_order_relaxed);
  s.perf.workspace_reuse_hits =
      c.perf_workspace_reuse.load(std::memory_order_relaxed);
  s.perf.warm_start_hits = c.perf_warm_hits.load(std::memory_order_relaxed);
  s.perf.warm_start_misses =
      c.perf_warm_misses.load(std::memory_order_relaxed);
  s.perf.validate_ns = c.perf_validate_ns.load(std::memory_order_relaxed);
  s.perf.solve_ns = c.perf_solve_ns.load(std::memory_order_relaxed);
  s.perf.certify_ns = c.perf_certify_ns.load(std::memory_order_relaxed);
  s.perf.mem_charged_bytes =
      c.perf_mem_charged.load(std::memory_order_relaxed);
  s.perf.mem_denials = c.perf_mem_denials.load(std::memory_order_relaxed);
  s.perf.mem_peak_bytes = c.perf_mem_peak.load(std::memory_order_relaxed);
  if (breaker_ != nullptr) {
    s.breaker_threshold = breaker_->threshold();
    s.open_breakers = breaker_->open_solvers();
  }
  if (cache_ != nullptr) {
    const AllocCacheStats cs = cache_->stats();
    s.cache_hits = cs.hits;
    s.cache_misses = cs.misses;
    s.cache_insertions = cs.insertions;
    s.cache_evictions = cs.evictions;
    s.cache_audit_samples = cs.audit_samples;
    s.cache_audit_evictions = cs.audit_evictions;
    s.cache_bytes_in_use = cs.bytes_in_use;
    s.cache_entries = cs.entries;
    // Mirror into the perf counters so LERA_PERF lines carry them too.
    s.perf.cache_hits = cs.hits;
    s.perf.cache_misses = cs.misses;
    s.perf.cache_evictions = cs.evictions + cs.audit_evictions;
    s.perf.cache_audit_samples = cs.audit_samples;
    s.perf.cache_bytes = cs.bytes_in_use;
  }
  return s;
}

PipelineReport Engine::run(const ir::TaskGraph& graph) const {
  const Supervision sup{run_deadline_of(options_), shutdown_,
                        breaker_.get(), stats_core_.get(), bank_.get(),
                        memory_budget_};
  const std::vector<ir::TaskId> order = graph.topological_order();
  std::vector<TaskReport> tasks(order.size());

  // Fan the independent per-task solves out; slot i belongs to the i-th
  // task in topological order regardless of which thread solves it.
  pool_->parallel_for(order.size(), [&](std::size_t i) {
    tasks[i] = solve_task(graph.task(order[i]), options_, sup);
  });

  // Aggregate sequentially in topological order: the report is built in
  // exactly the order the sequential pipeline built it, so parallel and
  // sequential runs are field-for-field identical.
  PipelineReport report;
  report.tasks.reserve(tasks.size());
  for (TaskReport& tr : tasks) {
    if (tr.result.degraded) ++report.tasks_degraded;
    if (tr.timed_out) {
      ++report.tasks_timed_out;
      report.timed_out_tasks.push_back(tr.task);
    }
    if (tr.audit.audited && !tr.audit.clean()) {
      ++report.tasks_with_audit_findings;
    }
    report.total_solver_fallbacks +=
        tr.result.solve_diagnostics.fallbacks_taken;
    if (!tr.feasible) {
      report.all_feasible = false;
      report.infeasible_tasks.push_back(tr.task);
      report.tasks.push_back(std::move(tr));
      continue;
    }
    report.total_static_energy += tr.result.static_energy.total();
    report.total_activity_energy += tr.result.activity_energy.total();
    report.total_mem_accesses += tr.result.stats.mem_accesses();
    report.total_reg_accesses += tr.result.stats.reg_accesses();
    report.peak_mem_locations =
        std::max(report.peak_mem_locations, tr.result.stats.mem_locations);
    report.peak_mem_read_ports = std::max(report.peak_mem_read_ports,
                                          tr.result.stats.mem_read_ports);
    report.peak_mem_write_ports = std::max(
        report.peak_mem_write_ports, tr.result.stats.mem_write_ports);
    report.tasks.push_back(std::move(tr));
  }
  return report;
}

ExploreResult Engine::explore(const ir::BasicBlock& bb) const {
  const Supervision sup{run_deadline_of(options_), shutdown_,
                        breaker_.get(), stats_core_.get(), bank_.get(),
                        memory_budget_};
  ExploreResult out;

  // Candidate generation is cheap and order-defining: do it inline.
  for (const sched::Resources& res : options_.resource_options) {
    ScheduleCandidate c;
    c.label = "list " + std::to_string(res.alus) + "alu/" +
              std::to_string(res.muls) + "mul";
    c.schedule = sched::list_schedule(bb, res);
    out.candidates.push_back(std::move(c));
  }
  const int critical_path = sched::asap(bb).length(bb);
  for (int slack : options_.slack_options) {
    ScheduleCandidate c;
    c.label = "force-directed +" + std::to_string(slack);
    c.schedule = sched::force_directed_schedule(bb, critical_path + slack);
    out.candidates.push_back(std::move(c));
  }

  // Candidate evaluation (problem build + optimal allocation) is the
  // expensive part and candidates are independent: fan out.
  pool_->parallel_for(out.candidates.size(), [&](std::size_t i) {
    out.candidates[i] =
        evaluate_candidate(bb, std::move(out.candidates[i]), options_, sup);
  });

  for (std::size_t i = 0; i < out.candidates.size(); ++i) {
    const ScheduleCandidate& c = out.candidates[i];
    if (!c.feasible) continue;
    if (out.best < 0 ||
        c.energy <
            out.candidates[static_cast<std::size_t>(out.best)].energy) {
      out.best = static_cast<int>(i);
    }
  }
  return out;
}

std::vector<alloc::AllocationResult> Engine::allocate_batch(
    const std::vector<alloc::AllocationProblem>& problems) const {
  const Supervision sup{run_deadline_of(options_), shutdown_,
                        breaker_.get(), stats_core_.get(), bank_.get(),
                        memory_budget_};
  std::vector<alloc::AllocationResult> results(problems.size());
  pool_->parallel_for(problems.size(), [&](std::size_t i) {
    // Anytime contract: problems not started when the run deadline
    // fires (or the engine shuts down) are skipped before paying the
    // flow-graph build, flagged on their result.
    if (sup.run_deadline.expired()) {
      results[i].timed_out = true;
      results[i].message = "run deadline expired before the solve started";
      return;
    }
    if (sup.cancel.cancelled()) {
      results[i].cancelled = true;
      results[i].message = "cancelled before the solve started";
      return;
    }
    // Cache consult: a hit serves a certified, already-audited result
    // without booking a solve. The fingerprint is computed once and
    // reused for the post-solve insert.
    std::optional<alloc::FingerprintResult> fp;
    if (cache_ != nullptr && cache_->enabled()) {
      fp = alloc::fingerprint_problem(problems[i]);
      if (auto hit = cache_->lookup(problems[i], *fp)) {
        results[i] = std::move(*hit);
        return;
      }
    }
    alloc::AllocatorOptions alloc_options = options_.alloc;
    apply_supervision(alloc_options, options_,
                      request_deadline(options_, sup.run_deadline),
                      sup.cancel, sup.breaker, sup.memory_budget);
    const ContextLease lease(sup.bank, options_, alloc_options,
                             &problems[i]);
    sup.stats->started.fetch_add(1, std::memory_order_relaxed);
    results[i] = alloc::allocate(problems[i], alloc_options);
    record_solve(sup.stats, results[i]);
    maybe_audit(problems[i], results[i], options_);
    if (fp.has_value()) cache_->insert(*fp, results[i]);
  });
  return results;
}

// --- Session ------------------------------------------------------------

std::string to_string(TicketStatus status) {
  switch (status) {
    case TicketStatus::kPending:
      return "pending";
    case TicketStatus::kRunning:
      return "running";
    case TicketStatus::kDone:
      return "done";
    case TicketStatus::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

/// Shared between the Session handle and in-flight pool jobs, so a
/// Session can be moved (or destroyed) while solves are still running.
struct Session::State {
  std::mutex mutex;
  std::condition_variable done_changed;
  /// Slot i holds ticket i's result. deque-of-slots semantics via
  /// unique_ptr: growing the vector never moves a slot a worker writes.
  std::vector<std::unique_ptr<alloc::AllocationResult>> results;
  std::vector<bool> done;
  std::vector<bool> running;
  /// Ticket i's cancel token: a child of `all`, which is itself a child
  /// of the engine's shutdown token, so cancel(ticket) < cancel_all() <
  /// ~Engine each widen the blast radius without extra bookkeeping.
  std::vector<netflow::CancelToken> tokens;
  netflow::CancelToken all;
};

Session::Session(const Engine& engine)
    : engine_(&engine), state_(std::make_shared<State>()) {
  state_->all = engine.shutdown_.child();
}

std::size_t Session::submit(alloc::AllocationProblem problem) {
  return submit(std::move(problem), 0);
}

std::size_t Session::submit(alloc::AllocationProblem problem,
                            double deadline_seconds) {
  std::size_t ticket;
  alloc::AllocationResult* slot;
  netflow::CancelToken token;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ticket = state_->results.size();
    state_->results.push_back(std::make_unique<alloc::AllocationResult>());
    state_->done.push_back(false);
    state_->running.push_back(false);
    state_->tokens.push_back(state_->all.child());
    token = state_->tokens.back();
    slot = state_->results.back().get();
  }
  // Per-request deadline, armed at submission so queue wait counts
  // against it — a deadline is a promise to the requester, not to the
  // worker that eventually picks the job up.
  const double budget = deadline_seconds > 0
                            ? deadline_seconds
                            : engine_->options_.task_deadline_seconds;
  const netflow::Deadline deadline =
      budget > 0 ? netflow::Deadline::after(budget) : netflow::Deadline();
  // The job owns its problem and a share of the state (and of the
  // engine's breaker/stats); it never touches the Session handle, so
  // moving/destroying the Session is safe.
  engine_->pool_->submit(
      [state = state_, slot, problem = std::move(problem),
       options = engine_->options_, ticket, token, deadline,
       stats = engine_->stats_core_, breaker = engine_->breaker_,
       bank = engine_->bank_, cache = engine_->cache_,
       memory_budget = engine_->memory_budget_] {
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->running[ticket] = true;
        }
        // Cache consult, as in allocate_batch: a hit serves without a
        // solve and the fingerprint is reused for the insert.
        std::optional<alloc::FingerprintResult> fp;
        bool served_from_cache = false;
        if (cache != nullptr && cache->enabled()) {
          fp = alloc::fingerprint_problem(problem);
          if (auto hit = cache->lookup(problem, *fp)) {
            *slot = std::move(*hit);
            served_from_cache = true;
          }
        }
        if (!served_from_cache) {
          alloc::AllocatorOptions alloc_options = options.alloc;
          apply_supervision(alloc_options, options, deadline, token,
                            breaker.get(), memory_budget);
          const ContextLease lease(bank.get(), options, alloc_options,
                                   &problem);
          stats->started.fetch_add(1, std::memory_order_relaxed);
          *slot = alloc::allocate(problem, alloc_options);
          record_solve(stats.get(), *slot);
          maybe_audit(problem, *slot, options);
          if (fp.has_value()) cache->insert(*fp, *slot);
        }
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->running[ticket] = false;
          state->done[ticket] = true;
        }
        state->done_changed.notify_all();
      });
  return ticket;
}

std::size_t Session::submitted() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->results.size();
}

const alloc::AllocationResult& Session::result(std::size_t ticket) const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_changed.wait(
      lock, [&] { return ticket < state_->done.size() &&
                         state_->done[ticket]; });
  return *state_->results[ticket];
}

const alloc::AllocationResult* Session::try_result(
    std::size_t ticket) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (ticket >= state_->done.size() || !state_->done[ticket]) {
    return nullptr;
  }
  return state_->results[ticket].get();
}

bool Session::wait_for(std::size_t ticket, double seconds) const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  return state_->done_changed.wait_for(
      lock, std::chrono::duration<double>(seconds),
      [&] { return ticket < state_->done.size() && state_->done[ticket]; });
}

TicketStatus Session::status(std::size_t ticket) const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  if (ticket >= state_->done.size()) return TicketStatus::kPending;
  if (state_->done[ticket]) {
    return state_->results[ticket]->cancelled ? TicketStatus::kCancelled
                                              : TicketStatus::kDone;
  }
  if (state_->tokens[ticket].cancelled()) return TicketStatus::kCancelled;
  return state_->running[ticket] ? TicketStatus::kRunning
                                 : TicketStatus::kPending;
}

void Session::cancel(std::size_t ticket) {
  netflow::CancelToken token;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (ticket >= state_->tokens.size()) return;
    token = state_->tokens[ticket];
  }
  token.request_cancel();
}

void Session::cancel_all() { state_->all.request_cancel(); }

std::vector<alloc::AllocationResult> Session::collect() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_changed.wait(lock, [&] {
    return std::all_of(state_->done.begin(), state_->done.end(),
                       [](bool d) { return d; });
  });
  std::vector<alloc::AllocationResult> out;
  out.reserve(state_->results.size());
  for (auto& r : state_->results) out.push_back(std::move(*r));
  return out;
}

}  // namespace lera::engine
