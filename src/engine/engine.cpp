#include "engine/engine.hpp"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <random>

#include "audit/audit.hpp"
#include "sched/force_directed.hpp"

namespace lera::engine {

namespace {

/// Maps the engine's audit knobs onto the auditor and stamps the
/// verdict into the result. Auditing is observation-only: it never
/// alters the allocation, throws, or stops sibling solves, so one bad
/// result in a batch still leaves every other slot intact.
void maybe_audit(const alloc::AllocationProblem& p,
                 alloc::AllocationResult& r,
                 const EngineOptions& options) {
  if (options.audit_level == audit::AuditLevel::kOff) return;
  audit::AuditOptions aopts;
  aopts.level = options.audit_level;
  aopts.ports = options.audit_ports;
  r.audit = audit::audit_result(p, r, aopts);
}

/// Uniform random 16-bit input rows for activity measurement. Seeded per
/// task (trace_seed + task_id), so the trace — and therefore the whole
/// allocation — is a pure function of the task and the options, not of
/// the thread that happens to run it.
std::vector<std::vector<std::int64_t>> make_trace(const ir::BasicBlock& bb,
                                                  int samples,
                                                  std::uint64_t seed) {
  int inputs = 0;
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode == ir::Opcode::kInput) ++inputs;
  }
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> dist(-32768, 32767);
  std::vector<std::vector<std::int64_t>> rows(
      static_cast<std::size_t>(samples));
  for (auto& row : rows) {
    row.resize(static_cast<std::size_t>(inputs));
    for (auto& v : row) v = dist(rng);
  }
  return rows;
}

/// One task's end of the §5 methodology: schedule, trace, allocate,
/// re-pack memory. Pure function of (task, options) — safe to run on any
/// thread concurrently with other tasks.
TaskReport solve_task(const ir::Task& task, const EngineOptions& options) {
  TaskReport tr;
  tr.task = task.id;
  tr.name = task.name;

  const sched::Schedule schedule =
      sched::list_schedule(task.block, options.resources);
  tr.schedule_length = schedule.length(task.block);

  const auto trace =
      options.trace_samples > 0
          ? make_trace(task.block, options.trace_samples,
                       options.trace_seed +
                           static_cast<std::uint64_t>(task.id))
          : std::vector<std::vector<std::int64_t>>{};
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      task.block, schedule, options.num_registers, options.params, trace,
      options.split);
  tr.max_density = p.max_density();

  alloc::AllocatorOptions alloc_options = options.alloc;
  alloc_options.fallback_to_baseline =
      alloc_options.fallback_to_baseline ||
      options.degrade_on_solver_failure;
  tr.result = alloc::allocate(p, alloc_options);
  maybe_audit(p, tr.result, options);
  tr.audit = tr.result.audit;
  tr.feasible = tr.result.feasible;
  tr.solve_summary = tr.result.solve_diagnostics.summary();
  if (tr.result.degraded) {
    tr.solve_summary += " [degraded to two-phase baseline]";
  }
  if (!tr.feasible) {
    tr.failure_reason = tr.result.message.empty()
                            ? "allocation infeasible"
                            : tr.result.message;
    tr.solve_summary += " [infeasible: " + tr.failure_reason + "]";
    return tr;
  }

  if (options.relayout_memory) {
    tr.layout = alloc::optimize_memory_layout(
        p, tr.result.assignment, options.alloc.quantizer,
        options.alloc.solver);
  }
  return tr;
}

/// Candidate evaluation for explore(): schedule is prebuilt (cheap and
/// sequential); the expensive problem build + allocation runs here, on
/// any thread.
ScheduleCandidate evaluate_candidate(const ir::BasicBlock& bb,
                                     ScheduleCandidate c,
                                     const EngineOptions& options) {
  c.length = c.schedule.length(bb);
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, c.schedule, options.num_registers, options.params, {},
      options.split);
  c.max_density = p.max_density();
  const alloc::AllocationResult r = alloc::allocate(p, options.alloc);
  if (r.feasible && (options.deadline == 0 || c.length <= options.deadline)) {
    c.feasible = true;
    c.energy = r.energy(p);
  }
  return c;
}

}  // namespace

Engine::Engine(EngineOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<ThreadPool>(options_.threads)) {}

PipelineReport Engine::run(const ir::TaskGraph& graph) const {
  const std::vector<ir::TaskId> order = graph.topological_order();
  std::vector<TaskReport> tasks(order.size());

  // Fan the independent per-task solves out; slot i belongs to the i-th
  // task in topological order regardless of which thread solves it.
  pool_->parallel_for(order.size(), [&](std::size_t i) {
    tasks[i] = solve_task(graph.task(order[i]), options_);
  });

  // Aggregate sequentially in topological order: the report is built in
  // exactly the order the sequential pipeline built it, so parallel and
  // sequential runs are field-for-field identical.
  PipelineReport report;
  report.tasks.reserve(tasks.size());
  for (TaskReport& tr : tasks) {
    if (tr.result.degraded) ++report.tasks_degraded;
    if (tr.audit.audited && !tr.audit.clean()) {
      ++report.tasks_with_audit_findings;
    }
    report.total_solver_fallbacks +=
        tr.result.solve_diagnostics.fallbacks_taken;
    if (!tr.feasible) {
      report.all_feasible = false;
      report.infeasible_tasks.push_back(tr.task);
      report.tasks.push_back(std::move(tr));
      continue;
    }
    report.total_static_energy += tr.result.static_energy.total();
    report.total_activity_energy += tr.result.activity_energy.total();
    report.total_mem_accesses += tr.result.stats.mem_accesses();
    report.total_reg_accesses += tr.result.stats.reg_accesses();
    report.peak_mem_locations =
        std::max(report.peak_mem_locations, tr.result.stats.mem_locations);
    report.peak_mem_read_ports = std::max(report.peak_mem_read_ports,
                                          tr.result.stats.mem_read_ports);
    report.peak_mem_write_ports = std::max(
        report.peak_mem_write_ports, tr.result.stats.mem_write_ports);
    report.tasks.push_back(std::move(tr));
  }
  return report;
}

ExploreResult Engine::explore(const ir::BasicBlock& bb) const {
  ExploreResult out;

  // Candidate generation is cheap and order-defining: do it inline.
  for (const sched::Resources& res : options_.resource_options) {
    ScheduleCandidate c;
    c.label = "list " + std::to_string(res.alus) + "alu/" +
              std::to_string(res.muls) + "mul";
    c.schedule = sched::list_schedule(bb, res);
    out.candidates.push_back(std::move(c));
  }
  const int critical_path = sched::asap(bb).length(bb);
  for (int slack : options_.slack_options) {
    ScheduleCandidate c;
    c.label = "force-directed +" + std::to_string(slack);
    c.schedule = sched::force_directed_schedule(bb, critical_path + slack);
    out.candidates.push_back(std::move(c));
  }

  // Candidate evaluation (problem build + optimal allocation) is the
  // expensive part and candidates are independent: fan out.
  pool_->parallel_for(out.candidates.size(), [&](std::size_t i) {
    out.candidates[i] =
        evaluate_candidate(bb, std::move(out.candidates[i]), options_);
  });

  for (std::size_t i = 0; i < out.candidates.size(); ++i) {
    const ScheduleCandidate& c = out.candidates[i];
    if (!c.feasible) continue;
    if (out.best < 0 ||
        c.energy <
            out.candidates[static_cast<std::size_t>(out.best)].energy) {
      out.best = static_cast<int>(i);
    }
  }
  return out;
}

std::vector<alloc::AllocationResult> Engine::allocate_batch(
    const std::vector<alloc::AllocationProblem>& problems) const {
  std::vector<alloc::AllocationResult> results(problems.size());
  pool_->parallel_for(problems.size(), [&](std::size_t i) {
    results[i] = alloc::allocate(problems[i], options_.alloc);
    maybe_audit(problems[i], results[i], options_);
  });
  return results;
}

// --- Session ------------------------------------------------------------

/// Shared between the Session handle and in-flight pool jobs, so a
/// Session can be moved (or destroyed) while solves are still running.
struct Session::State {
  std::mutex mutex;
  std::condition_variable done_changed;
  /// Slot i holds ticket i's result. deque-of-slots semantics via
  /// unique_ptr: growing the vector never moves a slot a worker writes.
  std::vector<std::unique_ptr<alloc::AllocationResult>> results;
  std::vector<bool> done;
};

Session::Session(const Engine& engine)
    : engine_(&engine), state_(std::make_shared<State>()) {}

std::size_t Session::submit(alloc::AllocationProblem problem) {
  std::size_t ticket;
  alloc::AllocationResult* slot;
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    ticket = state_->results.size();
    state_->results.push_back(std::make_unique<alloc::AllocationResult>());
    state_->done.push_back(false);
    slot = state_->results.back().get();
  }
  // The job owns its problem and a share of the state; it never touches
  // the Session handle, so moving/destroying the Session is safe.
  engine_->pool_->submit(
      [state = state_, slot, problem = std::move(problem),
       options = engine_->options_, ticket] {
        *slot = alloc::allocate(problem, options.alloc);
        maybe_audit(problem, *slot, options);
        {
          std::lock_guard<std::mutex> lock(state->mutex);
          state->done[ticket] = true;
        }
        state->done_changed.notify_all();
      });
  return ticket;
}

std::size_t Session::submitted() const {
  std::lock_guard<std::mutex> lock(state_->mutex);
  return state_->results.size();
}

const alloc::AllocationResult& Session::result(std::size_t ticket) const {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_changed.wait(
      lock, [&] { return ticket < state_->done.size() &&
                         state_->done[ticket]; });
  return *state_->results[ticket];
}

std::vector<alloc::AllocationResult> Session::collect() {
  std::unique_lock<std::mutex> lock(state_->mutex);
  state_->done_changed.wait(lock, [&] {
    return std::all_of(state_->done.begin(), state_->done.end(),
                       [](bool d) { return d; });
  });
  std::vector<alloc::AllocationResult> out;
  out.reserve(state_->results.size());
  for (auto& r : state_->results) out.push_back(std::move(*r));
  return out;
}

}  // namespace lera::engine
