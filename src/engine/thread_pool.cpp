#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace lera::engine {

int ThreadPool::resolve_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
    : num_threads_(resolve_threads(threads)) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    // No workers: run inline so a size-1 pool is exactly sequential.
    job();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(job));
  }
  wake_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared loop state: threads claim the next unclaimed index. The
  // claim order is racy but the *placement* of results is not — fn(i)
  // writes to slot i, so output is independent of the interleaving.
  struct ForState {
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> done{0};
    std::size_t total = 0;
    std::mutex mutex;
    std::condition_variable all_done;
    std::exception_ptr first_error;
  };
  auto state = std::make_shared<ForState>();
  state->total = n;

  auto drain = [state, &fn] {
    for (;;) {
      const std::size_t i =
          state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= state->total) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->first_error) {
          state->first_error = std::current_exception();
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          state->total) {
        // Lock so the notify cannot slip between the caller's predicate
        // check and its wait.
        std::lock_guard<std::mutex> lock(state->mutex);
        state->all_done.notify_all();
      }
    }
  };

  const std::size_t helpers =
      std::min(workers_.size(), n - 1);  // The caller drains too.
  for (std::size_t k = 0; k < helpers; ++k) submit(drain);
  drain();

  std::unique_lock<std::mutex> lock(state->mutex);
  state->all_done.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
  if (state->first_error) std::rethrow_exception(state->first_error);
}

}  // namespace lera::engine
