#include "engine/alloc_cache.hpp"

#include <utility>

#include "audit/audit.hpp"

namespace lera::engine {

namespace {

struct FpHash {
  std::size_t operator()(const alloc::Fingerprint& f) const {
    return static_cast<std::size_t>(f.hi ^ (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Rough but monotone byte estimate of one entry's retained storage;
/// what the byte cap and the MemoryBudget are charged with.
std::int64_t estimate_result_bytes(const alloc::AllocationResult& r) {
  std::int64_t bytes = static_cast<std::int64_t>(sizeof(r));
  bytes += static_cast<std::int64_t>(r.message.capacity());
  bytes += static_cast<std::int64_t>(r.assignment.size() * sizeof(int));
  const netflow::SolveDiagnostics& d = r.solve_diagnostics;
  bytes += static_cast<std::int64_t>(d.attempts.capacity() *
                                     sizeof(netflow::SolveAttempt));
  for (const netflow::SolveAttempt& a : d.attempts) {
    bytes += static_cast<std::int64_t>(a.note.capacity());
  }
  bytes += static_cast<std::int64_t>(d.message.capacity() +
                                     d.auto_features.capacity() +
                                     d.warm_store_note.capacity());
  bytes += static_cast<std::int64_t>(r.audit.findings.capacity() * 64);
  return bytes;
}

}  // namespace

struct AllocCache::Entry {
  alloc::Fingerprint key;
  std::uint64_t exact = 0;
  /// Per canonical segment position: register index or
  /// Assignment::kMemory. The assignment in any declaration order is
  /// canon_loc composed with that instance's seg_order.
  std::vector<int> canon_loc;
  /// The finished result, assignment stripped (rebuilt per serve).
  alloc::AllocationResult result;
  std::int64_t bytes = 0;
};

struct AllocCache::Shard {
  std::mutex mutex;
  std::list<Entry> lru;  ///< Front = most recently used.
  std::unordered_map<alloc::Fingerprint, std::list<Entry>::iterator, FpHash>
      index;
};

AllocCache::AllocCache(const AllocCacheOptions& options,
                       netflow::MemoryBudget budget)
    : options_(options), budget_(std::move(budget)) {
  num_shards_ = options_.max_entries >= 8 ? 8 : 1;
  entries_per_shard_ =
      options_.max_entries == 0
          ? 0
          : std::max<std::size_t>(1, options_.max_entries / num_shards_);
  shards_ = std::vector<Shard>(num_shards_);
}

AllocCache::~AllocCache() { clear(); }

AllocCache::Shard& AllocCache::shard_of(const alloc::Fingerprint& key) {
  return shards_[static_cast<std::size_t>(key.hi) % num_shards_];
}

void AllocCache::evict_locked(Shard& shard) {
  if (shard.lru.empty()) return;
  const Entry& tail = shard.lru.back();
  budget_.release(tail.bytes);
  bytes_.fetch_add(-tail.bytes, std::memory_order_relaxed);
  entry_count_.fetch_add(-1, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  shard.index.erase(tail.key);
  shard.lru.pop_back();
}

bool AllocCache::cacheable(const alloc::AllocationResult& r) {
  return r.feasible && !r.degraded && !r.timed_out && !r.cancelled &&
         !r.memory_exceeded &&
         r.solve_diagnostics.certification ==
             netflow::CertificationVerdict::kPassed &&
         r.audit.clean();
}

std::optional<alloc::AllocationResult> AllocCache::lookup(
    const alloc::AllocationProblem& p, const alloc::FingerprintResult& fp) {
  if (!enabled()) return std::nullopt;
  Shard& shard = shard_of(fp.canonical);

  alloc::AllocationResult candidate;
  std::vector<int> canon_loc;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(fp.canonical);
    if (it == shard.index.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    Entry& e = *it->second;
    if (e.canon_loc.size() != p.segments.size() ||
        e.canon_loc.size() != fp.seg_order.size()) {
      // A 128-bit collision with a different shape: never serve it.
      shard.lru.splice(shard.lru.end(), shard.lru, it->second);
      evict_locked(shard);
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    candidate = e.result;
    canon_loc = e.canon_loc;
  }

  // Remap the canonical-order assignment onto this instance's
  // declaration order (identity for exact repeats). Done outside the
  // lock — hits must not serialise on each other's audits.
  alloc::Assignment assignment(p.segments.size());
  for (std::size_t c = 0; c < canon_loc.size(); ++c) {
    const int loc = canon_loc[c];
    const auto seg = static_cast<std::size_t>(fp.seg_order[c]);
    if (loc >= 0) {
      assignment.assign_register(seg, loc);
    } else {
      assignment.assign_memory(seg);
    }
  }
  candidate.assignment = std::move(assignment);

  // Paranoia sampling: every audit_rate-th hit is re-derived from first
  // principles before being served. A finding means the entry (or the
  // fingerprint remap) lied: evict and recount as a miss, never serve.
  const std::int64_t hit_no = hits_.fetch_add(1, std::memory_order_relaxed);
  if (options_.audit_rate > 0 &&
      hit_no % static_cast<std::int64_t>(options_.audit_rate) == 0) {
    audit_samples_.fetch_add(1, std::memory_order_relaxed);
    audit::AuditOptions audit_opts;
    audit_opts.level = audit::AuditLevel::kFullCost;
    audit_opts.check_optimality = false;  // Keep the hit path O(instance).
    const audit::AuditReport report =
        audit::audit_result(p, candidate, audit_opts);
    if (!report.clean()) {
      audit_evictions_.fetch_add(1, std::memory_order_relaxed);
      hits_.fetch_add(-1, std::memory_order_relaxed);
      misses_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(shard.mutex);
      const auto it = shard.index.find(fp.canonical);
      if (it != shard.index.end()) {
        shard.lru.splice(shard.lru.end(), shard.lru, it->second);
        evict_locked(shard);
      }
      return std::nullopt;
    }
  }
  return candidate;
}

void AllocCache::insert(const alloc::FingerprintResult& fp,
                        const alloc::AllocationResult& r) {
  if (!enabled() || !cacheable(r)) return;
  if (r.assignment.size() != fp.seg_order.size()) return;

  Entry e;
  e.key = fp.canonical;
  e.exact = fp.exact;
  e.canon_loc.resize(fp.seg_order.size());
  for (std::size_t c = 0; c < fp.seg_order.size(); ++c) {
    e.canon_loc[c] =
        r.assignment.location(static_cast<std::size_t>(fp.seg_order[c]));
  }
  e.result = r;
  e.result.assignment = alloc::Assignment();  // Rebuilt per serve.
  e.bytes = estimate_result_bytes(e.result) +
            static_cast<std::int64_t>(e.canon_loc.size() * sizeof(int)) +
            static_cast<std::int64_t>(sizeof(Entry));

  Shard& shard = shard_of(fp.canonical);
  std::lock_guard<std::mutex> lock(shard.mutex);
  if (shard.index.find(fp.canonical) != shard.index.end()) {
    return;  // First write wins.
  }
  while (shard.lru.size() >= entries_per_shard_) evict_locked(shard);
  if (options_.max_bytes > 0) {
    while (bytes_.load(std::memory_order_relaxed) + e.bytes >
               options_.max_bytes &&
           !shard.lru.empty()) {
      evict_locked(shard);
    }
    if (bytes_.load(std::memory_order_relaxed) + e.bytes >
        options_.max_bytes) {
      return;  // Other shards hold the budget; skip, don't overrun.
    }
  }
  while (!budget_.try_charge(e.bytes)) {
    if (shard.lru.empty()) return;  // Budget refuses even an empty shard.
    evict_locked(shard);
  }
  bytes_.fetch_add(e.bytes, std::memory_order_relaxed);
  entry_count_.fetch_add(1, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.push_front(std::move(e));
  shard.index.emplace(shard.lru.front().key, shard.lru.begin());
}

AllocCacheStats AllocCache::stats() const {
  AllocCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.audit_samples = audit_samples_.load(std::memory_order_relaxed);
  s.audit_evictions = audit_evictions_.load(std::memory_order_relaxed);
  s.bytes_in_use = bytes_.load(std::memory_order_relaxed);
  s.entries = entry_count_.load(std::memory_order_relaxed);
  return s;
}

void AllocCache::clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const Entry& e : shard.lru) budget_.release(e.bytes);
    bytes_.fetch_add(
        -static_cast<std::int64_t>([&] {
          std::int64_t total = 0;
          for (const Entry& e : shard.lru) total += e.bytes;
          return total;
        }()),
        std::memory_order_relaxed);
    entry_count_.fetch_add(-static_cast<std::int64_t>(shard.lru.size()),
                           std::memory_order_relaxed);
    shard.index.clear();
    shard.lru.clear();
  }
}

}  // namespace lera::engine