#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// Worker pool behind lera::engine. Allocation solves are coarse
/// (milliseconds each) and independent, so a single shared queue with a
/// grab-next-index loop for parallel_for is all the stealing the
/// workload needs; the interesting contract is *determinism*: results
/// are always written to caller-chosen slots indexed by the work item,
/// never in completion order.

namespace lera::engine {

class ThreadPool {
 public:
  /// \p threads <= 0 selects the hardware concurrency; 1 creates no
  /// workers at all (every call runs inline on the caller's thread, so a
  /// threads=1 engine is bit-for-bit the sequential code path).
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work, counting the caller thread
  /// (always >= 1; a pool of size 1 has no workers).
  int size() const { return num_threads_; }

  /// Enqueues one job. Jobs must not throw; use parallel_for when
  /// exceptions have to propagate.
  void submit(std::function<void()> job);

  /// Runs fn(0), ..., fn(n-1) across the pool (the caller thread
  /// participates) and returns when all calls have finished. Indices are
  /// claimed dynamically, so callers must make fn(i) depend only on i —
  /// writing result i to slot i keeps the output deterministic no matter
  /// which thread ran it. The first exception thrown by any fn is
  /// rethrown on the caller's thread after the loop drains.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn);

  /// Maps the ThreadPool(threads) argument to the actual thread count.
  static int resolve_threads(int requested);

 private:
  void worker_loop();

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable wake_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
};

}  // namespace lera::engine
