#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/fingerprint.hpp"
#include "audit/report.hpp"
#include "netflow/membudget.hpp"

/// \file alloc_cache.hpp
/// The certified allocation cache: a bounded, sharded, thread-safe map
/// fingerprint -> certified AllocationResult. Production allocation
/// traffic is repetitive (the same kernels resubmitted under renamed
/// variables and identical costs), so a hit serves a finished, audited
/// allocation in O(segments) — the remap of the cached canonical-order
/// assignment onto the new instance's declaration order — instead of a
/// full flow solve.
///
/// Safety contract — the cache NEVER silently serves a wrong answer:
///  * only certified results enter (feasible, not degraded / timed-out /
///    cancelled / memory-curtailed, certification passed, no audit
///    findings);
///  * the canonical fingerprint collides permuted-but-equivalent
///    instances *by construction*; the stored segment count is still
///    cross-checked on every hit, and every audit_rate-th hit is
///    re-audited from first principles (audit::audit_allocation on the
///    remapped assignment). A mismatch evicts the entry and recounts
///    the lookup as a miss, so a fingerprint collision costs one solve,
///    not one wrong answer.
///
/// Eviction is LRU per shard, bounded by an entry cap and a byte cap;
/// entry bytes are charged against the PR 8 MemoryBudget chain, so
/// cache memory shows up in EngineStats / HEALTH and counts against
/// --max-bytes-total. A budget denial evicts from the LRU tail before
/// giving up on the insert.

namespace lera::engine {

struct AllocCacheOptions {
  /// Maximum cached entries (0 disables the cache; the default). Split
  /// across shards: values >= 8 use 8 shards of max_entries/8 each,
  /// smaller values a single shard.
  std::size_t max_entries = 0;
  /// Byte cap over all cached entries (0 = entry cap only).
  std::int64_t max_bytes = 0;
  /// Paranoia sampling: every Nth hit is re-audited before being
  /// served; a finding evicts the entry and recounts the hit as a
  /// miss. 0 = never re-audit.
  std::uint32_t audit_rate = 16;
};

/// Monotonic counters (bytes/entries are gauges). Thread-safe snapshot.
struct AllocCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  std::int64_t insertions = 0;
  std::int64_t evictions = 0;
  std::int64_t audit_samples = 0;
  std::int64_t audit_evictions = 0;
  std::int64_t bytes_in_use = 0;
  std::int64_t entries = 0;
};

class AllocCache {
 public:
  /// \p budget is the accounting chain entry bytes are charged against
  /// (typically a child of the engine-wide budget); an invalid budget
  /// tracks nothing.
  AllocCache(const AllocCacheOptions& options, netflow::MemoryBudget budget);
  ~AllocCache();

  AllocCache(const AllocCache&) = delete;
  AllocCache& operator=(const AllocCache&) = delete;

  bool enabled() const { return options_.max_entries > 0; }

  /// O(1) lookup by canonical fingerprint. On a hit, returns the cached
  /// result with its assignment remapped onto \p p's declaration order
  /// (for exact repeats the remap is the identity, so the result is
  /// bit-identical to the original solve). Counts a miss — and evicts —
  /// when the sampled re-audit finds anything.
  std::optional<alloc::AllocationResult> lookup(
      const alloc::AllocationProblem& p, const alloc::FingerprintResult& fp);

  /// Records a certified result under its canonical fingerprint (the
  /// assignment is stored in canonical segment order so any permutation
  /// of the instance can be served). Silently refuses results that are
  /// not cacheable() and duplicate keys (first write wins; the entry
  /// already serving hits is never replaced underneath a reader).
  void insert(const alloc::FingerprintResult& fp,
              const alloc::AllocationResult& r);

  /// The entry contract: feasible, came from the certified flow path
  /// (not the baseline), untainted by deadline/cancel/memory verdicts,
  /// and clean under any audit that ran.
  static bool cacheable(const alloc::AllocationResult& r);

  AllocCacheStats stats() const;

  void clear();

 private:
  struct Entry;
  struct Shard;

  Shard& shard_of(const alloc::Fingerprint& key);
  void evict_locked(Shard& shard);  ///< Drops the shard's LRU tail.

  AllocCacheOptions options_;
  netflow::MemoryBudget budget_;
  std::size_t num_shards_ = 1;
  std::size_t entries_per_shard_ = 0;
  std::vector<Shard> shards_;

  std::atomic<std::int64_t> bytes_{0};
  std::atomic<std::int64_t> entry_count_{0};
  std::atomic<std::int64_t> hits_{0};
  std::atomic<std::int64_t> misses_{0};
  std::atomic<std::int64_t> insertions_{0};
  std::atomic<std::int64_t> evictions_{0};
  std::atomic<std::int64_t> audit_samples_{0};
  std::atomic<std::int64_t> audit_evictions_{0};
};

}  // namespace lera::engine
