#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "alloc/evaluate.hpp"
#include "alloc/memory_layout.hpp"
#include "sched/schedule.hpp"

/// \file codegen.hpp
/// Instruction mapping — the §5 methodology's final stage: "detailed
/// instruction mapping and data layout (for example adding loads and
/// stores, or substituting in instructions with a memory operand)".
///
/// emit() lowers a scheduled, allocated basic block to a DSP-style
/// instruction sequence: compute instructions read register or memory
/// operands (or immediates for constants) and write to a register or a
/// memory word; explicit LOAD/STORE/MOVE instructions realise the
/// allocation's spills, reloads and register moves at their cuts.
///
/// run() executes the program on a register-file + memory machine with
/// read-before-write step semantics and returns the live-out values, so
/// every allocation can be *proven* to compute the same results as the
/// IR interpreter — tests do exactly that, and also check that the
/// program's memory traffic equals the energy model's access counts.

namespace lera::codegen {

struct Operand {
  enum class Kind { kRegister, kMemory, kImmediate };
  Kind kind = Kind::kRegister;
  int index = 0;            ///< Register index or memory address.
  std::int64_t value = 0;   ///< Immediate payload.

  static Operand reg(int r) { return {Kind::kRegister, r, 0}; }
  static Operand mem(int addr) { return {Kind::kMemory, addr, 0}; }
  static Operand imm(std::int64_t v) { return {Kind::kImmediate, 0, v}; }
};

struct Instruction {
  enum class Kind { kCompute, kLoad, kStore, kMove };
  Kind kind = Kind::kCompute;
  int issue_step = 0;    ///< Operands are read at this step.
  int write_step = 0;    ///< The destination is written at this step.
  ir::Opcode opcode = ir::Opcode::kAdd;  ///< For kCompute.
  int width = 16;
  std::vector<Operand> sources;
  Operand destination;
  std::string comment;   ///< Value name, for the listing.
};

struct Program {
  std::vector<Instruction> instructions;  ///< Sorted by issue step.
  int num_registers = 0;
  int num_memory_words = 0;
  /// Indices of kInput values' initial locations, in input order
  /// (register or memory operand each).
  std::vector<Operand> input_slots;
  /// Where each kOutput-read value sits at the end, in output order.
  std::vector<Operand> output_slots;

  int loads = 0;       ///< Explicit LOADs plus distinct memory operands.
  int stores = 0;      ///< Explicit STOREs plus memory destinations.
  int code_size() const { return static_cast<int>(instructions.size()); }

  /// Assembly-like listing.
  std::string to_string() const;
};

/// Lowers (bb, schedule, allocation, memory layout) to a Program.
/// The layout's addresses must come from the same assignment.
Program emit(const ir::BasicBlock& bb, const sched::Schedule& sched,
             const alloc::AllocationProblem& p,
             const alloc::Assignment& assignment,
             const alloc::MemoryLayout& layout);

/// Executes \p program with \p inputs (one per kInput, in order) and
/// returns the output values (one per kOutput, in order). Step
/// semantics: all reads of a step happen before any write of that step.
std::vector<std::int64_t> run(const Program& program,
                              const std::vector<std::int64_t>& inputs);

}  // namespace lera::codegen
