#include "codegen/codegen.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <sstream>

#include "ir/eval.hpp"

namespace lera::codegen {

namespace {

using lifetime::CutKind;
using lifetime::Segment;

std::string operand_text(const Operand& op) {
  switch (op.kind) {
    case Operand::Kind::kRegister:
      return "r" + std::to_string(op.index);
    case Operand::Kind::kMemory:
      return "[" + std::to_string(op.index) + "]";
    case Operand::Kind::kImmediate:
      return "#" + std::to_string(op.value);
  }
  return "?";
}

/// Builder state shared across the emission passes.
struct Emitter {
  const ir::BasicBlock& bb;
  const sched::Schedule& sched;
  const alloc::AllocationProblem& p;
  const alloc::Assignment& assignment;
  const alloc::MemoryLayout& layout;

  std::vector<int> var_of_value;  ///< ValueId -> lifetime index or -1.
  std::vector<int> first_seg;
  int scratch_address = -1;       ///< Home for model-mandated write-backs
                                  ///< of values moving register to
                                  ///< register (rare, never optimal).
  Program program;
  std::set<std::pair<int, int>> mem_reads_seen;  ///< (var, step) dedup.

  Operand segment_location(std::size_t seg) const {
    if (assignment.in_register(seg)) {
      return Operand::reg(assignment.location(seg));
    }
    const int addr = layout.address[seg];
    assert(addr >= 0 && "memory segment without an address");
    return Operand::mem(addr);
  }

  /// Segment of \p var that is read at step \p t (ends there).
  std::size_t segment_read_at(int var, int t) const {
    for (std::size_t s = static_cast<std::size_t>(first_seg[
             static_cast<std::size_t>(var)]);
         s < p.segments.size() && p.segments[s].var == var; ++s) {
      if (p.segments[s].end == t &&
          p.segments[s].end_kind != CutKind::kBoundary) {
        return s;
      }
    }
    assert(false && "no segment read at the requested step");
    return 0;
  }

  void count_read(int var, int step, const Operand& src) {
    if (src.kind == Operand::Kind::kMemory &&
        mem_reads_seen.insert({var, step}).second) {
      ++program.loads;
    }
  }

  /// Source operand for reading value \p v at step \p t.
  Operand read_operand(ir::ValueId v, int t) {
    const int var = var_of_value[static_cast<std::size_t>(v)];
    if (var < 0) {  // Constant (immediate) operand.
      return Operand::imm(bb.value(v).literal);
    }
    const Operand src = segment_location(segment_read_at(var, t));
    count_read(var, t, src);
    return src;
  }

  void emit_computes() {
    for (const ir::Operation& op : bb.ops()) {
      if (ir::is_source(op.opcode) || op.opcode == ir::Opcode::kOutput) {
        continue;
      }
      Instruction instr;
      instr.kind = Instruction::Kind::kCompute;
      instr.opcode = op.opcode;
      instr.issue_step = sched.start(op.id);
      instr.write_step = sched.finish(bb, op.id);
      instr.width = bb.value(op.result).width;
      instr.comment = bb.value(op.result).name;
      for (ir::ValueId operand : op.operands) {
        instr.sources.push_back(read_operand(operand, instr.issue_step));
      }
      const int var = var_of_value[static_cast<std::size_t>(op.result)];
      if (var < 0) {
        instr.destination = Operand::imm(0);  // Dead result: discard.
      } else {
        instr.destination = segment_location(
            static_cast<std::size_t>(first_seg[static_cast<std::size_t>(
                var)]));
        if (instr.destination.kind == Operand::Kind::kMemory) {
          ++program.stores;
        }
      }
      program.instructions.push_back(std::move(instr));
    }
  }

  void add_transfer(Instruction::Kind kind, int step, Operand src,
                    Operand dst, const std::string& comment) {
    Instruction instr;
    instr.kind = kind;
    instr.issue_step = step;
    instr.write_step = step;
    instr.sources = {src};
    instr.destination = dst;
    instr.comment = comment;
    if (kind == Instruction::Kind::kStore) ++program.stores;
    program.instructions.push_back(std::move(instr));
  }

  void emit_cut_transfers() {
    for (std::size_t s = 0; s + 1 < p.segments.size(); ++s) {
      const Segment& cur = p.segments[s];
      const Segment& next = p.segments[s + 1];
      if (cur.var != next.var) continue;
      const int cut = cur.end;
      const Operand a = segment_location(s);
      const Operand b = segment_location(s + 1);
      const bool a_reg = a.kind == Operand::Kind::kRegister;
      const bool b_reg = b.kind == Operand::Kind::kRegister;
      const std::string& name =
          p.lifetimes[static_cast<std::size_t>(cur.var)].name;

      const bool leaving = a_reg && !(b_reg && b.index == a.index);
      const bool entering = b_reg && !(a_reg && a.index == b.index);
      if (leaving) {
        // Write-back; register-to-register moves park the model-mandated
        // copy in the scratch word (see DESIGN.md on the write-back
        // semantics).
        const Operand home = b.kind == Operand::Kind::kMemory
                                 ? b
                                 : Operand::mem(scratch_address);
        add_transfer(Instruction::Kind::kStore, cut, a, home,
                     name + " spill");
      }
      if (entering) {
        if (cur.end_kind == CutKind::kBoundary) {
          // Explicit reload at an access-time cut.
          const Operand from = a.kind == Operand::Kind::kMemory
                                   ? a
                                   : Operand::mem(scratch_address);
          if (from.kind == Operand::Kind::kMemory &&
              from.index != scratch_address) {
            count_read(cur.var, cut, from);
          } else if (from.index == scratch_address) {
            ++program.loads;  // Scratch round trip still costs a read.
          }
          add_transfer(Instruction::Kind::kLoad, cut, from, b,
                       name + " reload");
        } else if (a.kind == Operand::Kind::kMemory) {
          // The consumer's fetch at this read doubles as the load; the
          // LOAD shares that access (deduplicated in the counts).
          count_read(cur.var, cut, a);
          add_transfer(Instruction::Kind::kLoad, cut, a, b,
                       name + " load-with-use");
        } else {
          add_transfer(Instruction::Kind::kMove, cut, a, b,
                       name + " move");
        }
      }
    }
  }
};

}  // namespace

std::string Program::to_string() const {
  std::ostringstream os;
  for (const Instruction& instr : instructions) {
    os << "  " << instr.issue_step << ": ";
    switch (instr.kind) {
      case Instruction::Kind::kCompute:
        os << ir::to_string(instr.opcode) << " "
           << operand_text(instr.destination);
        for (const Operand& src : instr.sources) {
          os << ", " << operand_text(src);
        }
        break;
      case Instruction::Kind::kLoad:
        os << "load " << operand_text(instr.destination) << ", "
           << operand_text(instr.sources[0]);
        break;
      case Instruction::Kind::kStore:
        os << "store " << operand_text(instr.destination) << ", "
           << operand_text(instr.sources[0]);
        break;
      case Instruction::Kind::kMove:
        os << "move " << operand_text(instr.destination) << ", "
           << operand_text(instr.sources[0]);
        break;
    }
    if (!instr.comment.empty()) os << "   ; " << instr.comment;
    os << "\n";
  }
  return os.str();
}

Program emit(const ir::BasicBlock& bb, const sched::Schedule& sched,
             const alloc::AllocationProblem& p,
             const alloc::Assignment& assignment,
             const alloc::MemoryLayout& layout) {
  Emitter e{bb, sched, p, assignment, layout, {}, {}, -1, {}, {}};
  e.var_of_value.assign(bb.num_values(), -1);
  for (std::size_t var = 0; var < p.lifetimes.size(); ++var) {
    e.var_of_value[static_cast<std::size_t>(p.lifetimes[var].value)] =
        static_cast<int>(var);
  }
  e.first_seg = p.first_segment_of_var();
  e.scratch_address = layout.locations;  // One word past the image.

  e.program.num_registers = p.num_registers;
  e.program.num_memory_words = layout.locations + 1;  // + scratch.

  // Input ABI: where the runner must place each kInput value.
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode != ir::Opcode::kInput) continue;
    const int var = e.var_of_value[static_cast<std::size_t>(op.result)];
    const Operand slot =
        var < 0 ? Operand::imm(0)
                : e.segment_location(static_cast<std::size_t>(
                      e.first_seg[static_cast<std::size_t>(var)]));
    // Placing a live-in value in memory is the producer's write; the
    // energy model charges it to this block's base, so the traffic
    // counts include it too.
    if (slot.kind == Operand::Kind::kMemory) ++e.program.stores;
    e.program.input_slots.push_back(slot);
  }

  e.emit_computes();
  e.emit_cut_transfers();

  // Output ABI: where each kOutput value ends up (its death location).
  for (const ir::Operation& op : bb.ops()) {
    if (op.opcode != ir::Opcode::kOutput) continue;
    const ir::ValueId v = op.operands[0];
    const int var = e.var_of_value[static_cast<std::size_t>(v)];
    assert(var >= 0 && "outputs always have lifetimes");
    const std::size_t seg =
        e.segment_read_at(var, p.lifetimes[static_cast<std::size_t>(
                                   var)].last_read());
    const Operand slot = e.segment_location(seg);
    e.count_read(var, p.lifetimes[static_cast<std::size_t>(var)].last_read(),
                 slot);
    e.program.output_slots.push_back(slot);
  }

  std::stable_sort(e.program.instructions.begin(),
                   e.program.instructions.end(),
                   [](const Instruction& x, const Instruction& y) {
                     return x.issue_step < y.issue_step;
                   });
  return e.program;
}

std::vector<std::int64_t> run(const Program& program,
                              const std::vector<std::int64_t>& inputs) {
  std::vector<std::int64_t> regs(
      static_cast<std::size_t>(std::max(1, program.num_registers)), 0);
  std::vector<std::int64_t> mem(
      static_cast<std::size_t>(std::max(1, program.num_memory_words)), 0);

  auto write_to = [&](const Operand& dst, std::int64_t value) {
    switch (dst.kind) {
      case Operand::Kind::kRegister:
        regs[static_cast<std::size_t>(dst.index)] = value;
        break;
      case Operand::Kind::kMemory:
        mem[static_cast<std::size_t>(dst.index)] = value;
        break;
      case Operand::Kind::kImmediate:
        break;  // Discard (dead result).
    }
  };
  auto read_from = [&](const Operand& src) -> std::int64_t {
    switch (src.kind) {
      case Operand::Kind::kRegister:
        return regs[static_cast<std::size_t>(src.index)];
      case Operand::Kind::kMemory:
        return mem[static_cast<std::size_t>(src.index)];
      case Operand::Kind::kImmediate:
        return src.value;
    }
    return 0;
  };

  // Place the live-in values.
  assert(inputs.size() == program.input_slots.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    write_to(program.input_slots[i], inputs[i]);
  }

  // Execute step by step: all reads of a step happen before any write
  // of that step; multi-cycle results land at their write step.
  struct PendingWrite {
    int step;
    Operand destination;
    std::int64_t value;
  };
  std::vector<PendingWrite> pending;

  int last_step = 0;
  for (const Instruction& instr : program.instructions) {
    last_step = std::max(last_step, instr.write_step);
  }

  std::size_t next_instr = 0;
  for (int step = 1; step <= last_step; ++step) {
    // Read phase: latch operands of everything issuing this step.
    while (next_instr < program.instructions.size() &&
           program.instructions[next_instr].issue_step == step) {
      const Instruction& instr = program.instructions[next_instr];
      std::vector<std::int64_t> operands;
      operands.reserve(instr.sources.size());
      for (const Operand& src : instr.sources) {
        operands.push_back(read_from(src));
      }
      std::int64_t value = 0;
      switch (instr.kind) {
        case Instruction::Kind::kCompute:
          value = ir::apply_opcode(instr.opcode, operands, instr.width);
          break;
        case Instruction::Kind::kLoad:
        case Instruction::Kind::kStore:
        case Instruction::Kind::kMove:
          value = operands[0];
          break;
      }
      pending.push_back({instr.write_step, instr.destination, value});
      ++next_instr;
    }

    // Write phase: apply everything scheduled to land at this step.
    for (auto it = pending.begin(); it != pending.end();) {
      if (it->step == step) {
        write_to(it->destination, it->value);
        it = pending.erase(it);
      } else {
        ++it;
      }
    }
  }
  assert(pending.empty());

  std::vector<std::int64_t> outputs;
  outputs.reserve(program.output_slots.size());
  for (const Operand& slot : program.output_slots) {
    outputs.push_back(read_from(slot));
  }
  return outputs;
}

}  // namespace lera::codegen
