#include "report/gantt.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <string>
#include <vector>

namespace lera::report {

void draw_schedule(std::ostream& os, const ir::BasicBlock& bb,
                   const sched::Schedule& sched) {
  const int x = sched.length(bb);
  struct Slot {
    sched::FuClass cls;
    std::vector<std::string> by_step;  // Label per step, "" if idle.
  };
  std::vector<Slot> slots;

  auto place = [&](const ir::Operation& op) {
    const sched::FuClass cls = sched::fu_class(op.opcode);
    const int start = sched.start(op.id);
    const int finish = sched.finish(bb, op.id);
    const std::string label =
        ir::to_string(op.opcode) + " " +
        (op.result != ir::kNoValue ? bb.value(op.result).name : "");
    for (Slot& slot : slots) {
      if (slot.cls != cls) continue;
      bool free = true;
      for (int s = start; s <= finish && free; ++s) {
        free = slot.by_step[static_cast<std::size_t>(s)].empty();
      }
      if (free) {
        for (int s = start; s <= finish; ++s) {
          slot.by_step[static_cast<std::size_t>(s)] = label;
        }
        return;
      }
    }
    Slot fresh;
    fresh.cls = cls;
    fresh.by_step.assign(static_cast<std::size_t>(x) + 1, "");
    for (int s = start; s <= finish; ++s) {
      fresh.by_step[static_cast<std::size_t>(s)] = label;
    }
    slots.push_back(std::move(fresh));
  };

  for (const ir::Operation& op : bb.ops()) {
    if (ir::is_source(op.opcode) || op.opcode == ir::Opcode::kOutput) {
      continue;
    }
    place(op);
  }
  std::stable_sort(slots.begin(), slots.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.cls < b.cls;
                   });

  std::size_t width = 8;
  for (const Slot& slot : slots) {
    for (const std::string& label : slot.by_step) {
      width = std::max(width, label.size() + 1);
    }
  }

  os << "step |";
  int alu = 0;
  int mul = 0;
  for (const Slot& slot : slots) {
    const std::string head =
        slot.cls == sched::FuClass::kAlu
            ? "alu" + std::to_string(alu++)
            : "mul" + std::to_string(mul++);
    os << ' ' << std::left << std::setw(static_cast<int>(width)) << head
       << '|';
  }
  os << "\n";
  for (int s = 1; s <= x; ++s) {
    os << std::right << std::setw(4) << s << " |";
    for (const Slot& slot : slots) {
      os << ' ' << std::left << std::setw(static_cast<int>(width))
         << slot.by_step[static_cast<std::size_t>(s)] << '|';
    }
    os << "\n";
  }
}

}  // namespace lera::report
