#include "report/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace lera::report {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::num(int v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(width[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  print_row(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(width[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) os << ",";
      os << cells[c];
    }
    os << "\n";
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace lera::report
