#pragma once

#include <iosfwd>

#include "ir/basic_block.hpp"
#include "sched/schedule.hpp"

/// \file gantt.hpp
/// ASCII Gantt rendering of a schedule: one row per control step, one
/// column per functional-unit instance, showing which operation each
/// unit executes (multi-cycle operations span several rows).

namespace lera::report {

/// Draws \p sched for \p bb. Columns are assigned greedily per FU class
/// in op order; the drawing is purely informational (the scheduler
/// enforces the real resource limits).
void draw_schedule(std::ostream& os, const ir::BasicBlock& bb,
                   const sched::Schedule& sched);

}  // namespace lera::report
