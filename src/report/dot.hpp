#pragma once

#include <iosfwd>

#include "alloc/flow_graph.hpp"
#include "netflow/solution.hpp"

/// \file dot.hpp
/// Graphviz export of the allocation flow graph — the programmatic
/// equivalent of the paper's Figure 1b/1c drawings. Lifetime arcs render
/// solid (bold when forced), transition arcs dashed, with the solution's
/// flow highlighted when given.

namespace lera::report {

/// Writes \p spec as a DOT digraph. If \p solution is non-null, arcs
/// carrying flow are coloured and labelled with it.
void write_dot(std::ostream& os, const alloc::FlowGraphSpec& spec,
               const netflow::FlowSolution* solution = nullptr);

}  // namespace lera::report
