#pragma once

#include <iosfwd>

#include "alloc/assignment.hpp"

/// \file ascii_chart.hpp
/// Terminal rendering of lifetime/allocation diagrams in the style of
/// the paper's Figures 1, 3 and 4: one column per variable, one row per
/// boundary between control steps. Register-resident spans print the
/// register index (0-9, then a-z), memory-resident spans print '*'.

namespace lera::report {

/// Draws the lifetimes of \p p; if \p a is non-null the placement of
/// every segment is shown (register digit vs '*'), otherwise plain
/// lifetime bars ('|') are drawn.
void draw_lifetimes(std::ostream& os, const alloc::AllocationProblem& p,
                    const alloc::Assignment* a = nullptr);

}  // namespace lera::report
