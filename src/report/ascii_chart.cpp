#include "report/ascii_chart.hpp"

#include <algorithm>
#include <ostream>
#include <string>
#include <vector>

namespace lera::report {

namespace {

char register_glyph(int reg) {
  if (reg < 10) return static_cast<char>('0' + reg);
  if (reg < 36) return static_cast<char>('a' + reg - 10);
  return '+';
}

}  // namespace

void draw_lifetimes(std::ostream& os, const alloc::AllocationProblem& p,
                    const alloc::Assignment* a) {
  const std::size_t n = p.lifetimes.size();
  if (n == 0) {
    os << "(no lifetimes)\n";
    return;
  }

  // Column headers: one character per variable, with a legend when
  // names do not fit in one character.
  os << "boundary ";
  bool legend_needed = false;
  for (std::size_t v = 0; v < n; ++v) {
    const std::string& name = p.lifetimes[v].name;
    os << (name.size() == 1 ? name : std::string(1, '?')) << ' ';
    legend_needed = legend_needed || name.size() != 1;
  }
  os << "  density\n";

  for (int b = 0; b <= p.num_steps; ++b) {
    os << (b < 10 ? "       " : "      ") << b << ' ';
    for (std::size_t v = 0; v < n; ++v) {
      char glyph = ' ';
      for (std::size_t s = 0; s < p.segments.size(); ++s) {
        const lifetime::Segment& seg = p.segments[s];
        if (static_cast<std::size_t>(seg.var) != v) continue;
        if (seg.start <= b && b < seg.end) {
          if (a == nullptr) {
            glyph = '|';
          } else if (a->in_register(s)) {
            glyph = register_glyph(a->location(s));
          } else {
            glyph = '*';
          }
          break;
        }
      }
      os << glyph << ' ';
    }
    os << "  " << p.density[static_cast<std::size_t>(b)];
    if (p.is_max_density[static_cast<std::size_t>(b)]) os << " <- peak";
    os << "\n";
  }

  if (legend_needed) {
    os << "legend:";
    for (std::size_t v = 0; v < n; ++v) {
      os << ' ' << v << '=' << p.lifetimes[v].name;
    }
    os << "\n";
  }
  if (a != nullptr) {
    os << "(digits = register index, '*' = memory)\n";
  }
}

}  // namespace lera::report
