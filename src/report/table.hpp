#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// Small text-table builder used by the benchmark binaries to print the
/// paper's tables/figures and by examples for human-readable output.

namespace lera::report {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; cells beyond the header count are dropped, missing
  /// cells are blank.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with \p precision digits.
  static std::string num(double v, int precision = 2);
  static std::string num(int v);

  /// Renders as an aligned ASCII table.
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (header row first).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lera::report
