#include "report/dot.hpp"

#include <ostream>

namespace lera::report {

void write_dot(std::ostream& os, const alloc::FlowGraphSpec& spec,
               const netflow::FlowSolution* solution) {
  const netflow::Graph& g = spec.graph;
  os << "digraph flow {\n  rankdir=TB;\n  node [shape=circle];\n";
  for (netflow::NodeId v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\"" << g.node_name(v) << "\"];\n";
  }
  for (netflow::ArcId a = 0; a < g.num_arcs(); ++a) {
    const netflow::Arc& arc = g.arc(a);
    const alloc::FlowGraphSpec::ArcInfo& info =
        spec.arc_info[static_cast<std::size_t>(a)];
    os << "  n" << arc.tail << " -> n" << arc.head << " [";
    switch (info.kind) {
      case alloc::ArcKind::kSegment:
        os << (arc.lower > 0 ? "style=bold" : "style=solid");
        break;
      case alloc::ArcKind::kChain:
        os << "style=dotted";
        break;
      default:
        os << "style=dashed";
        break;
    }
    os << ", label=\"" << arc.cost;
    if (solution && solution->optimal() &&
        solution->arc_flow[static_cast<std::size_t>(a)] > 0) {
      os << " f=" << solution->arc_flow[static_cast<std::size_t>(a)];
      os << "\", color=red";
    } else {
      os << "\"";
    }
    os << "];\n";
  }
  os << "}\n";
}

}  // namespace lera::report
