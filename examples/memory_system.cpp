// Complete memory-system synthesis for one kernel — every §5/§7 stage:
//
//   1. simultaneous register/memory partition (the core flow);
//   2. second-stage memory re-layout (activity-aware address packing);
//   3. DSP offset assignment (free +-1 address steps, §7's extension);
//   4. multi-bank partitioning (parallel access + sleep modes, §2 refs
//      [4, 15, 16, 19]).
//
// Build & run:  ./build/examples/memory_system

#include <iostream>

#include "alloc/allocator.hpp"
#include "alloc/banking.hpp"
#include "alloc/memory_layout.hpp"
#include "alloc/offset_assignment.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace lera;

  const ir::BasicBlock bb = workloads::make_fft(8);
  const sched::Schedule schedule = sched::list_schedule(bb, {2, 2});
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, schedule, /*num_registers=*/10, params,
      workloads::correlated_inputs(bb, 48, workloads::Stimulus::kSine, 4));

  std::cout << "kernel " << bb.name() << ": " << p.lifetimes.size()
            << " variables over " << p.num_steps
            << " steps, peak density " << p.max_density() << ", R = "
            << p.num_registers << "\n\n";

  // 1. Partition + register allocation.
  const alloc::AllocationResult r = alloc::allocate(p);
  if (!r.feasible) {
    std::cerr << "allocation failed: " << r.message << "\n";
    return 1;
  }
  std::cout << "stage 1 — simultaneous flow: "
            << r.stats.mem_accesses() << " memory / "
            << r.stats.reg_accesses() << " register accesses, "
            << r.stats.mem_locations << " memory words, energy "
            << report::Table::num(r.activity_energy.total())
            << " add-units\n";

  // 2. Address packing.
  const alloc::MemoryLayout layout =
      alloc::optimize_memory_layout(p, r.assignment);
  std::cout << "stage 2 — memory re-layout: " << layout.locations
            << " addresses, occupant switching "
            << report::Table::num(layout.optimized_activity) << " (naive "
            << report::Table::num(layout.naive_activity) << ")\n";

  // 3. Offset assignment.
  const alloc::OffsetAssignment offsets =
      alloc::assign_offsets(p, r.assignment, layout.address);
  std::cout << "stage 3 — offset assignment: " << offsets.free_transitions
            << "/" << offsets.total_transitions
            << " address transitions free (+-1); reloads "
            << offsets.reloads << " vs naive " << offsets.naive_reloads
            << "\n";

  // 4. Banking.
  report::Table banks({"banks", "conflicts", "vs interleaved",
                       "parallel pairs", "idle steps/bank"});
  for (int n : {1, 2, 4}) {
    const alloc::BankAssignment b =
        alloc::assign_banks(p, r.assignment, layout.address, n);
    std::string idle;
    for (std::size_t i = 0; i < b.idle_steps.size(); ++i) {
      idle += (i ? "/" : "") + std::to_string(b.idle_steps[i]);
    }
    banks.add_row({report::Table::num(n), report::Table::num(b.conflicts),
                   report::Table::num(b.naive_conflicts),
                   report::Table::num(b.parallel_pairs), idle});
  }
  std::cout << "stage 4 — banking:\n";
  banks.print(std::cout);
  return 0;
}
