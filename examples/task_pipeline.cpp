// Whole-application storage optimisation (paper §5 methodology).
//
// A small radar application as a task flow graph — front-end filter,
// spectral mixing, detection — pushed through the complete pipeline:
// per-task list scheduling, trace-measured switching activities, the
// simultaneous min-cost-flow allocation, and the second-stage memory
// re-layout. The report aggregates storage energy across the whole
// application and sizes the memory/ports for the worst task.
//
// Build & run:  ./build/examples/task_pipeline

#include <iostream>

#include "pipeline/pipeline.hpp"
#include "report/table.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace lera;

  ir::TaskGraph app;
  const ir::TaskId fe = app.add_task("front_end_fir", workloads::make_fir(8));
  const ir::TaskId eq =
      app.add_task("equalise_iir", workloads::make_iir_biquad(), {fe});
  const ir::TaskId mix =
      app.add_task("mix_butterfly", workloads::make_fft_butterfly(), {eq});
  app.add_task("detect_rsp", workloads::make_rsp(4), {mix});

  pipeline::PipelineOptions opts;
  opts.resources = {2, 1};
  opts.num_registers = 6;
  opts.params.register_model = energy::RegisterModel::kActivity;

  const pipeline::PipelineReport report = pipeline::run_pipeline(app, opts);

  report::Table table({"task", "steps", "peak density", "mem/reg accesses",
                       "mem locs", "addr switching (opt/naive)",
                       "E static", "E activity"});
  for (const pipeline::TaskReport& tr : report.tasks) {
    if (!tr.result.feasible) {
      table.add_row({tr.name, "-", "-", "infeasible: " + tr.result.message});
      continue;
    }
    table.add_row(
        {tr.name, report::Table::num(tr.schedule_length),
         report::Table::num(tr.max_density),
         report::Table::num(tr.result.stats.mem_accesses()) + "/" +
             report::Table::num(tr.result.stats.reg_accesses()),
         report::Table::num(tr.result.stats.mem_locations),
         report::Table::num(tr.layout.optimized_activity) + "/" +
             report::Table::num(tr.layout.naive_activity),
         report::Table::num(tr.result.static_energy.total()),
         report::Table::num(tr.result.activity_energy.total())});
  }
  table.print(std::cout);

  std::cout << "\napplication totals: "
            << report.total_mem_accesses << " memory accesses, "
            << report.total_reg_accesses << " register accesses\n"
            << "memory image: " << report.peak_mem_locations
            << " words; ports needed: " << report.peak_mem_read_ports
            << "R/" << report.peak_mem_write_ports << "W\n"
            << "storage energy: "
            << report::Table::num(report.total_static_energy)
            << " (static) / "
            << report::Table::num(report.total_activity_energy)
            << " (activity) add-units\n";
  return report.all_feasible ? 0 : 1;
}
