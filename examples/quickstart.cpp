// Quickstart: the whole pipeline on a ten-line DSP snippet.
//
//   1. describe the computation as a basic block (SSA data-flow graph);
//   2. schedule it onto a small datapath;
//   3. run the simultaneous memory-partitioning + register-allocation
//      flow of Gebotys (DAC'97);
//   4. inspect where every value lives and what the storage energy is.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "alloc/allocator.hpp"
#include "report/gantt.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace lera;

  // 1. A tiny complex-multiply kernel (an FFT butterfly).
  const ir::BasicBlock bb = workloads::make_fft_butterfly();
  std::cout << "kernel '" << bb.name() << "': " << bb.num_ops()
            << " operations, " << bb.num_values() << " values\n";

  // 2. Schedule on 2 ALUs + 1 multiplier.
  const sched::Schedule schedule = sched::list_schedule(bb, {2, 1});
  std::cout << "schedule length: " << schedule.length(bb)
            << " control steps\n\n";
  report::draw_schedule(std::cout, bb, schedule);
  std::cout << "\n";

  // 3. Allocate with R = 3 registers under the activity-based model,
  //    measuring switching activities from a random input trace.
  energy::EnergyParams params;  // Paper-derived defaults (see DESIGN.md).
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem problem = alloc::make_problem_from_block(
      bb, schedule, /*num_registers=*/3, params,
      workloads::random_inputs(bb, 32, /*seed=*/1));
  const alloc::AllocationResult result = alloc::allocate(problem);
  if (!result.feasible) {
    std::cerr << "allocation failed: " << result.message << "\n";
    return 1;
  }

  // 4. Report.
  report::Table table({"value", "lifetime", "placement"});
  for (std::size_t s = 0; s < problem.segments.size(); ++s) {
    const auto& seg = problem.segments[s];
    const auto& lt =
        problem.lifetimes[static_cast<std::size_t>(seg.var)];
    table.add_row(
        {lt.name + (seg.index > 0 ? "#" + std::to_string(seg.index) : ""),
         "[" + std::to_string(seg.start) + "," + std::to_string(seg.end) +
             ")",
         result.assignment.in_register(s)
             ? "r" + std::to_string(result.assignment.location(s))
             : "memory"});
  }
  table.print(std::cout);

  std::cout << "memory accesses:   " << result.stats.mem_accesses() << "\n"
            << "register accesses: " << result.stats.reg_accesses() << "\n"
            << "memory locations:  " << result.stats.mem_locations << "\n"
            << "energy (static model, eq.1):   "
            << result.static_energy.total() << " add-units\n"
            << "energy (activity model, eq.2): "
            << result.activity_energy.total() << " add-units\n";
  return 0;
}
