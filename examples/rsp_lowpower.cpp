// Radar signal processing, low-power design-space exploration.
//
// The scenario from the paper's §6: a real-time radar kernel whose
// on-chip memory may be clocked slower than the datapath and
// voltage-scaled to save energy (the datapath still meets its deadline;
// only storage slows down). For every (memory slowdown, register count)
// point we run the simultaneous allocator and report the storage energy,
// then pick the cheapest feasible configuration.
//
// Build & run:  ./build/examples/rsp_lowpower

#include <iostream>
#include <optional>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "energy/voltage.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace lera;

  const ir::BasicBlock bb = workloads::make_rsp(6);
  const sched::Schedule schedule = sched::list_schedule(bb, {2, 2});
  const auto inputs = workloads::random_inputs(bb, 64, 17);

  std::cout << "radar kernel: " << bb.num_ops() << " ops, "
            << schedule.length(bb) << " control steps\n\n";

  struct Point {
    int slowdown;
    int registers;
    double energy;
  };
  std::optional<Point> best;

  report::Table table({"mem clock", "Vmem", "R", "mem/reg accesses",
                       "mem locations", "addr switching (opt vs naive)",
                       "storage energy"});
  for (int slowdown : {1, 2, 4}) {
    for (int registers : {8, 12, 16}) {
      energy::EnergyParams params;
      params.register_model = energy::RegisterModel::kActivity;
      params.v_mem = energy::voltage_for_slowdown(slowdown);
      lifetime::SplitOptions split;
      split.access.period = slowdown;

      const alloc::AllocationProblem p = alloc::make_problem_from_block(
          bb, schedule, registers, params, inputs, split);
      const alloc::AllocationResult r = alloc::allocate(p);
      const std::string clock =
          slowdown == 1 ? "f" : "f/" + std::to_string(slowdown);
      if (!r.feasible) {
        table.add_row({clock, report::Table::num(params.v_mem),
                       report::Table::num(registers), "infeasible", "-",
                       "-", "-"});
        continue;
      }

      // Second stage (§5): re-pack the memory-resident lifetimes to
      // minimise occupant switching in the memory cells.
      const alloc::MemoryLayout layout =
          alloc::optimize_memory_layout(p, r.assignment);

      const double energy = r.activity_energy.total();
      table.add_row(
          {clock, report::Table::num(params.v_mem),
           report::Table::num(registers),
           report::Table::num(r.stats.mem_accesses()) + "/" +
               report::Table::num(r.stats.reg_accesses()),
           report::Table::num(r.stats.mem_locations),
           report::Table::num(layout.optimized_activity) + " vs " +
               report::Table::num(layout.naive_activity),
           report::Table::num(energy)});
      if (!best || energy < best->energy) {
        best = Point{slowdown, registers, energy};
      }
    }
  }
  table.print(std::cout);

  if (best) {
    std::cout << "\nrecommended operating point: memory at "
              << (best->slowdown == 1
                      ? "f"
                      : "f/" + std::to_string(best->slowdown))
              << " with R = " << best->registers << " ("
              << report::Table::num(best->energy)
              << " add-units per block execution)\n";
  }
  return 0;
}
