// Command-line allocator: read a basic block in LERA's text format,
// schedule it, and print the minimum-energy register/memory assignment.
//
//   ./build/examples/allocate_tool kernel.lera [options]
//     -r N          registers (default 4)
//     -p N          memory access period (default 1 = every step)
//     -m MODEL      static | activity (default activity)
//     -g GRAPH      density | allpairs (default density)
//     -l FILE       read a lifetime problem (problem_io format) instead
//                   of a code kernel; -r/-p of the file take precedence
//     --threads N   engine worker threads (0 = all cores, 1 = sequential;
//                   results are identical either way)
//     --explore     co-explore schedules via the parallel engine and
//                   print the candidate table instead of one allocation
//     --csv         machine-readable output
//     --asm         also print the lowered load/store/compute listing
//
// With no file argument a built-in demo kernel is used. See
// src/ir/parser.hpp and src/workloads/problem_io.hpp for the grammars.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "codegen/codegen.hpp"
#include "engine/engine.hpp"
#include "ir/parser.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/problem_io.hpp"

namespace {

constexpr const char* kDemo = R"(# demo: complex multiply + accumulate
in ar, ai, br, bi, acc
p0 = ar * br
p1 = ai * bi
p2 = ar * bi
p3 = ai * br
re = p0 - p1
im = p2 + p3
s = re + acc
out s
out im
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace lera;

  std::string source = kDemo;
  std::string source_name = "(built-in demo)";
  std::string lifetimes_path;
  int registers = 4;
  int period = 1;
  int threads = 1;
  bool csv = false;
  bool emit_asm = false;
  bool explore = false;
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  alloc::AllocatorOptions alloc_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    auto next_int = [&](const char* flag) {
      const std::string v = next();
      try {
        return std::stoi(v);
      } catch (...) {
        std::cerr << "error: " << flag << " requires an integer, got '"
                  << v << "'\n";
        std::exit(1);
      }
    };
    if (arg == "-r") {
      registers = next_int("-r");
    } else if (arg == "-p") {
      period = next_int("-p");
    } else if (arg == "-m") {
      const std::string m = next();
      params.register_model = m == "static"
                                  ? energy::RegisterModel::kStatic
                                  : energy::RegisterModel::kActivity;
    } else if (arg == "-g") {
      alloc_opts.style = next() == "allpairs"
                             ? alloc::GraphStyle::kAllPairs
                             : alloc::GraphStyle::kDensityRegions;
    } else if (arg == "-l") {
      lifetimes_path = next();
    } else if (arg == "--threads") {
      threads = next_int("--threads");
    } else if (arg == "--explore") {
      explore = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--asm") {
      emit_asm = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: allocate_tool [file.lera] [-r N] [-p N] "
                   "[-m static|activity] [-g density|allpairs] "
                   "[--threads N] [--explore] [--csv]\n";
      return 0;
    } else {
      std::ifstream in(arg);
      if (!in) {
        std::cerr << "cannot open " << arg << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      source = buffer.str();
      source_name = arg;
    }
  }

  alloc::AllocationProblem p;
  std::optional<ir::BasicBlock> block;
  std::optional<sched::Schedule> block_schedule;
  if (!lifetimes_path.empty()) {
    std::ifstream in(lifetimes_path);
    if (!in) {
      std::cerr << "cannot open " << lifetimes_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const workloads::ProblemParseResult parsed =
        workloads::parse_problem(buffer.str(), params);
    if (!parsed.ok()) {
      std::cerr << lifetimes_path << ": " << parsed.error << "\n";
      return 1;
    }
    p = *parsed.problem;
    source_name = lifetimes_path;
  } else {
    const ir::ParseResult parsed = ir::parse_block(source, source_name);
    if (!parsed.ok()) {
      std::cerr << source_name << ": " << parsed.error << "\n";
      return 1;
    }
    block = *parsed.block;
    const ir::BasicBlock& bb = *block;
    block_schedule = sched::list_schedule(bb, {2, 1});
    lifetime::SplitOptions split;
    split.access.period = period;
    p = alloc::make_problem_from_block(
        bb, *block_schedule, registers, params,
        workloads::random_inputs(bb, 32, 1), split);
    std::cout << source_name << ": " << bb.num_ops() << " ops, schedule "
              << block_schedule->length(bb) << " steps, R = " << registers
              << "\n\n";
  }
  // One unified option core drives every solve below: the single
  // allocation and the (parallel) schedule exploration.
  engine::EngineOptions eng_opts;
  eng_opts.num_registers = registers;
  eng_opts.params = params;
  eng_opts.split.access.period = period;
  eng_opts.alloc = alloc_opts;
  eng_opts.threads = threads;
  const engine::Engine engine(eng_opts);

  if (explore) {
    if (!block) {
      std::cerr << "--explore needs a code kernel, not a lifetime file\n";
      return 1;
    }
    const engine::ExploreResult ex = engine.explore(*block);
    report::Table candidates(
        {"candidate", "length", "max density", "energy", "feasible"});
    for (std::size_t i = 0; i < ex.candidates.size(); ++i) {
      const engine::ScheduleCandidate& c = ex.candidates[i];
      candidates.add_row(
          {(static_cast<int>(i) == ex.best ? "* " : "  ") + c.label,
           report::Table::num(c.length), report::Table::num(c.max_density),
           c.feasible ? report::Table::num(c.energy) : "-",
           c.feasible ? "yes" : "no"});
    }
    if (csv) {
      candidates.print_csv(std::cout);
    } else {
      candidates.print(std::cout);
      std::cout << "\n(" << engine.threads()
                << " engine threads; * marks the cheapest feasible "
                   "candidate)\n";
    }
    return ex.best >= 0 ? 0 : 1;
  }

  const alloc::AllocationResult r = engine.allocate_batch({p}).front();
  if (!r.feasible) {
    std::cerr << "allocation infeasible: " << r.message << "\n";
    std::cerr << "solver diagnostics: " << r.solve_diagnostics.summary()
              << "\n";
    for (const std::string& issue :
         r.solve_diagnostics.instance_errors) {
      std::cerr << "  instance error: " << issue << "\n";
    }
    return 1;
  }
  if (r.degraded) {
    std::cerr << "warning: " << r.message << "\n";
  }

  report::Table table({"segment", "interval", "placement"});
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const auto& seg = p.segments[s];
    table.add_row(
        {p.lifetimes[static_cast<std::size_t>(seg.var)].name +
             (seg.index ? "#" + std::to_string(seg.index) : ""),
         "[" + std::to_string(seg.start) + "," + std::to_string(seg.end) +
             ")",
         r.assignment.in_register(s)
             ? "r" + std::to_string(r.assignment.location(s))
             : "memory"});
  }

  if (csv) {
    table.print_csv(std::cout);
    std::cout << "mem_accesses," << r.stats.mem_accesses() << "\n"
              << "reg_accesses," << r.stats.reg_accesses() << "\n"
              << "mem_locations," << r.stats.mem_locations << "\n"
              << "energy," << r.energy(p) << "\n"
              << "degraded," << (r.degraded ? 1 : 0) << "\n"
              << "solver,"
              << (r.degraded
                      ? std::string("two-phase-baseline")
                      : to_string(r.solve_diagnostics.solver_used))
              << "\n"
              << "solver_fallbacks,"
              << r.solve_diagnostics.fallbacks_taken << "\n";
    return 0;
  }

  report::draw_lifetimes(std::cout, p, &r.assignment);
  std::cout << "\n";
  table.print(std::cout);
  if (emit_asm && block) {
    const alloc::MemoryLayout layout =
        alloc::optimize_memory_layout(p, r.assignment);
    const codegen::Program program = codegen::emit(
        *block, *block_schedule, p, r.assignment, layout);
    std::cout << "\nlowered code (" << program.code_size()
              << " instructions, " << program.loads << " loads, "
              << program.stores << " stores):\n"
              << program.to_string();
  }
  std::cout << "\nsolver: " << r.solve_diagnostics.summary() << "\n";
  std::cout << "\nmem accesses " << r.stats.mem_accesses()
            << ", reg accesses " << r.stats.reg_accesses()
            << ", memory locations " << r.stats.mem_locations
            << "\nenergy " << report::Table::num(r.energy(p))
            << " add-units ("
            << (params.register_model == energy::RegisterModel::kStatic
                    ? "static"
                    : "activity")
            << " model)\n";
  return 0;
}
