// Command-line allocator: read a basic block in LERA's text format,
// schedule it, and print the minimum-energy register/memory assignment.
//
//   ./build/examples/allocate_tool kernel.lera [options]
//     -r N          registers (default 4)
//     -p N          memory access period (default 1 = every step)
//     -m MODEL      static | activity (default activity)
//     -g GRAPH      density | allpairs (default density)
//     -l FILE       read a lifetime problem (problem_io format) instead
//                   of a code kernel; -r/-p of the file take precedence
//     --solver S    auto | ssp | simplex | cost-scaling | cycle-canceling
//                   (default ssp): primary min-cost-flow backend; auto
//                   picks per instance from its shape (netflow/select.hpp)
//                   and the chosen backend appears in the solver
//                   diagnostics line / CSV solver column
//     --threads N   engine worker threads (0 = all cores, 1 = sequential;
//                   results are identical either way)
//     --deadline-ms N  wall-clock budget for the whole run; overrunning
//                   solves degrade to the two-phase baseline (or are
//                   skipped) and print "LERA_TIMEOUT <task> <detail>";
//                   a run curtailed this way exits 3
//     --retries N   re-run a solver whose answer flunks certification up
//                   to N times (transient-fault healing) before falling
//                   through the chain
//     --max-bytes N per-solve memory budget in bytes (0 = unlimited);
//                   a solve whose predicted footprint the budget refuses
//                   degrades to the two-phase baseline, or prints
//                   "LERA_ERROR <task> kind=memory <detail>" and exits 4
//                   when no usable answer remains
//     --audit L     off | legality | full (default off): run the
//                   independent auditor on every result; findings are
//                   printed as LERA_AUDIT lines and make the exit
//                   non-zero
//     --pipeline    treat every positional file as one task of a task
//                   chain and run the whole §5 pipeline; each infeasible
//                   task prints "LERA_ERROR <task> <reason>" and the
//                   exit is non-zero
//     --explore     co-explore schedules via the parallel engine and
//                   print the candidate table instead of one allocation
//     --perf        print the engine's solver performance counters
//                   (augmentations, heap traffic, workspace/warm-start
//                   hits, per-phase ns) as one "LERA_PERF ..." line
//     --cache       enable the engine's certified allocation cache,
//                   re-submit the identical instance through it after
//                   the cold solve, and print one "LERA_CACHE hit|miss"
//                   line per solve — scripts can verify the cache
//                   round-trip (miss, then hit, served bit-identical)
//                   without standing up lera_server
//     --csv         machine-readable output
//     --asm         also print the lowered load/store/compute listing
//
// Any infeasible allocation prints a machine-readable line
//   LERA_ERROR <task> <reason>
// on stdout and exits non-zero, so scripts can grep for failures
// without parsing the human-facing report. Malformed input files print
//   LERA_ERROR <file> bad_request: <parser diagnostic>
// (same reason word the server's LERA_REJECT uses), deadline-curtailed
// work prints
//   LERA_TIMEOUT <task> <detail>
// the same way, and memory-budget-refused work prints
//   LERA_ERROR <task> kind=memory <detail>
// (same failure class the server sheds as memory_infeasible). Exit
// codes: 0 ok, 1 infeasible or bad input (usage errors included), 2
// audit findings, 3 timed-out-degraded (usable but deadline-curtailed
// output), 4 memory-budget-refused with no usable answer. Keep these
// aligned with docs/API.md.
//
// With no file argument a built-in demo kernel is used. See
// src/ir/parser.hpp and src/workloads/problem_io.hpp for the grammars.

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "alloc/allocator.hpp"
#include "alloc/memory_layout.hpp"
#include "codegen/codegen.hpp"
#include "engine/engine.hpp"
#include "ir/parser.hpp"
#include "report/ascii_chart.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"
#include "workloads/problem_io.hpp"

namespace {

/// One machine-readable failure line per infeasible task. Grep target
/// for scripts; keep the format in sync with the header comment.
void print_error_line(const std::string& task, const std::string& reason) {
  std::cout << "LERA_ERROR " << task << " "
            << (reason.empty() ? "allocation infeasible" : reason) << "\n";
}

/// Audit findings in the same grep-friendly shape (non-zero exit is the
/// caller's job).
void print_audit_findings(const std::string& task,
                          const lera::audit::AuditReport& audit) {
  for (const lera::audit::AuditFinding& f : audit.findings) {
    std::cout << "LERA_AUDIT " << task << " " << f.to_string() << "\n";
  }
}

/// Deadline-curtailed work, grep-friendly like LERA_ERROR (exit 3 is
/// the caller's job).
void print_timeout_line(const std::string& task, const std::string& detail) {
  std::cout << "LERA_TIMEOUT " << task << " "
            << (detail.empty() ? "deadline curtailed the solve" : detail)
            << "\n";
}

/// Memory-budget-refused work: the typed kind= marker lets scripts
/// separate "needs a bigger budget" (exit 4) from genuine
/// infeasibility (exit 1).
void print_memory_line(const std::string& task, const std::string& detail) {
  std::cout << "LERA_ERROR " << task << " kind=memory "
            << (detail.empty() ? "solve memory budget exhausted" : detail)
            << "\n";
}

constexpr const char* kDemo = R"(# demo: complex multiply + accumulate
in ar, ai, br, bi, acc
p0 = ar * br
p1 = ai * bi
p2 = ar * bi
p3 = ai * br
re = p0 - p1
im = p2 + p3
s = re + acc
out s
out im
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace lera;

  std::string source = kDemo;
  std::string source_name = "(built-in demo)";
  std::string lifetimes_path;
  std::vector<std::string> positional;
  int registers = 4;
  int period = 1;
  int threads = 1;
  int deadline_ms = 0;
  int retries = 0;
  long long max_bytes = 0;
  bool csv = false;
  bool perf = false;
  bool use_cache = false;
  bool emit_asm = false;
  bool explore = false;
  bool pipeline = false;
  audit::AuditLevel audit_level = audit::AuditLevel::kOff;
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  alloc::AllocatorOptions alloc_opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    auto next_int = [&](const char* flag) {
      const std::string v = next();
      try {
        return std::stoi(v);
      } catch (...) {
        std::cerr << "error: " << flag << " requires an integer, got '"
                  << v << "'\n";
        std::exit(1);
      }
    };
    if (arg == "-r") {
      registers = next_int("-r");
    } else if (arg == "-p") {
      period = next_int("-p");
    } else if (arg == "-m") {
      const std::string m = next();
      params.register_model = m == "static"
                                  ? energy::RegisterModel::kStatic
                                  : energy::RegisterModel::kActivity;
    } else if (arg == "-g") {
      alloc_opts.style = next() == "allpairs"
                             ? alloc::GraphStyle::kAllPairs
                             : alloc::GraphStyle::kDensityRegions;
    } else if (arg == "-l") {
      lifetimes_path = next();
    } else if (arg == "--solver" || arg.rfind("--solver=", 0) == 0) {
      const std::string name =
          arg.size() > 8 && arg[8] == '=' ? arg.substr(9) : next();
      if (name == "auto") {
        alloc_opts.solver = netflow::SolverKind::kAuto;
      } else if (name == "ssp") {
        alloc_opts.solver = netflow::SolverKind::kSuccessiveShortestPaths;
      } else if (name == "simplex") {
        alloc_opts.solver = netflow::SolverKind::kNetworkSimplex;
      } else if (name == "cost-scaling") {
        alloc_opts.solver = netflow::SolverKind::kCostScaling;
      } else if (name == "cycle-canceling") {
        alloc_opts.solver = netflow::SolverKind::kCycleCanceling;
      } else {
        std::cerr << "error: --solver expects auto|ssp|simplex|"
                     "cost-scaling|cycle-canceling, got '"
                  << name << "'\n";
        return 1;
      }
    } else if (arg == "--threads") {
      threads = next_int("--threads");
    } else if (arg == "--deadline-ms") {
      deadline_ms = next_int("--deadline-ms");
    } else if (arg == "--retries") {
      retries = next_int("--retries");
    } else if (arg == "--max-bytes") {
      const std::string v = next();
      try {
        max_bytes = std::stoll(v);
      } catch (...) {
        std::cerr << "error: --max-bytes requires an integer, got '" << v
                  << "'\n";
        return 1;
      }
      if (max_bytes < 0) {
        std::cerr << "error: --max-bytes must be non-negative\n";
        return 1;
      }
    } else if (arg == "--audit") {
      const std::string level = next();
      if (level == "off") {
        audit_level = audit::AuditLevel::kOff;
      } else if (level == "legality") {
        audit_level = audit::AuditLevel::kLegality;
      } else if (level == "full") {
        audit_level = audit::AuditLevel::kFullCost;
      } else {
        std::cerr << "error: --audit expects off|legality|full, got '"
                  << level << "'\n";
        return 1;
      }
    } else if (arg == "--pipeline") {
      pipeline = true;
    } else if (arg == "--explore") {
      explore = true;
    } else if (arg == "--perf") {
      perf = true;
    } else if (arg == "--cache") {
      use_cache = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--asm") {
      emit_asm = true;
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: allocate_tool [file.lera...] [-r N] [-p N] "
                   "[-m static|activity] [-g density|allpairs] "
                   "[--solver auto|ssp|simplex|cost-scaling|cycle-canceling] "
                   "[--threads N] [--deadline-ms N] [--retries N] "
                   "[--max-bytes N] [--audit off|legality|full] "
                   "[--pipeline] [--explore] [--perf] [--cache] "
                   "[--csv]\n";
      return 0;
    } else {
      positional.push_back(arg);
    }
  }

  if (!pipeline && positional.size() > 1) {
    std::cerr << "error: multiple input files need --pipeline\n";
    return 1;
  }
  if (!positional.empty() && !pipeline) {
    std::ifstream in(positional.front());
    if (!in) {
      std::cerr << "cannot open " << positional.front() << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    source = buffer.str();
    source_name = positional.front();
  }

  alloc::AllocationProblem p;
  std::optional<ir::BasicBlock> block;
  std::optional<sched::Schedule> block_schedule;
  if (pipeline) {
    // Problem setup below is for the single-kernel modes; the pipeline
    // branch parses its own task files.
  } else if (!lifetimes_path.empty()) {
    std::ifstream in(lifetimes_path);
    if (!in) {
      std::cerr << "cannot open " << lifetimes_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const workloads::ProblemParseResult parsed =
        workloads::parse_problem(buffer.str(), params);
    if (!parsed.ok()) {
      // Malformed input is a typed, grep-able failure like every other
      // kind — same shape the server's bad_request rejection uses.
      print_error_line(lifetimes_path, "bad_request: " + parsed.error);
      std::cerr << lifetimes_path << ": " << parsed.error << "\n";
      return 1;
    }
    p = *parsed.problem;
    source_name = lifetimes_path;
  } else {
    const ir::ParseResult parsed = ir::parse_block(source, source_name);
    if (!parsed.ok()) {
      print_error_line(source_name, "bad_request: " + parsed.error);
      std::cerr << source_name << ": " << parsed.error << "\n";
      return 1;
    }
    block = *parsed.block;
    const ir::BasicBlock& bb = *block;
    block_schedule = sched::list_schedule(bb, {2, 1});
    lifetime::SplitOptions split;
    split.access.period = period;
    p = alloc::make_problem_from_block(
        bb, *block_schedule, registers, params,
        workloads::random_inputs(bb, 32, 1), split);
    std::cout << source_name << ": " << bb.num_ops() << " ops, schedule "
              << block_schedule->length(bb) << " steps, R = " << registers
              << "\n\n";
  }
  // One unified option core drives every solve below: the single
  // allocation and the (parallel) schedule exploration.
  engine::EngineOptions eng_opts;
  eng_opts.num_registers = registers;
  eng_opts.params = params;
  eng_opts.split.access.period = period;
  eng_opts.alloc = alloc_opts;
  eng_opts.threads = threads;
  eng_opts.audit_level = audit_level;
  if (deadline_ms > 0) {
    eng_opts.run_deadline_seconds = deadline_ms / 1000.0;
    // Anytime mode: an overrunning flow solve degrades to the two-phase
    // baseline (flagged + exit 3) instead of failing outright.
    eng_opts.alloc.fallback_to_baseline = true;
  }
  eng_opts.solver_retries = retries;
  if (use_cache) eng_opts.cache_entries = 256;
  if (max_bytes > 0) {
    eng_opts.max_bytes_per_solve = max_bytes;
    // Like the deadline path: a budget-refused flow solve degrades to
    // the two-phase baseline (flagged) rather than failing outright.
    eng_opts.alloc.fallback_to_baseline = true;
  }
  const engine::Engine engine(eng_opts);
  // Solver perf counters are aggregated engine-wide; one grep-friendly
  // line after the mode's output (see netflow::PerfCounters::summary).
  const auto print_perf = [&engine, perf] {
    if (perf) {
      std::cout << "LERA_PERF " << engine.stats().perf.summary() << "\n";
    }
  };

  if (pipeline) {
    if (positional.empty()) {
      std::cerr << "error: --pipeline needs at least one kernel file\n";
      return 1;
    }
    // Each file is one task; files form a chain (task i depends on
    // task i-1), matching the paper's sequential task execution model.
    ir::TaskGraph graph;
    ir::TaskId prev = -1;
    for (const std::string& path : positional) {
      std::ifstream in(path);
      if (!in) {
        std::cerr << "cannot open " << path << "\n";
        return 1;
      }
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const ir::ParseResult parsed = ir::parse_block(buffer.str(), path);
      if (!parsed.ok()) {
        print_error_line(path, "bad_request: " + parsed.error);
        std::cerr << path << ": " << parsed.error << "\n";
        return 1;
      }
      prev = graph.add_task(
          path, *parsed.block,
          prev >= 0 ? std::vector<ir::TaskId>{prev}
                    : std::vector<ir::TaskId>{});
    }

    const engine::PipelineReport rep = engine.run(graph);
    report::Table tasks_table(
        {"task", "steps", "energy", "mem", "reg", "status"});
    for (const engine::TaskReport& tr : rep.tasks) {
      const double task_energy =
          params.register_model == energy::RegisterModel::kStatic
              ? tr.result.static_energy.total()
              : tr.result.activity_energy.total();
      tasks_table.add_row(
          {tr.name, report::Table::num(tr.schedule_length),
           tr.feasible ? report::Table::num(task_energy) : "-",
           report::Table::num(tr.result.stats.mem_accesses()),
           report::Table::num(tr.result.stats.reg_accesses()),
           tr.feasible ? (tr.result.degraded ? "degraded" : "ok")
                       : "INFEASIBLE"});
    }
    if (csv) {
      tasks_table.print_csv(std::cout);
    } else {
      tasks_table.print(std::cout);
      std::cout << "\ntotal energy "
                << report::Table::num(rep.total_static_energy +
                                      rep.total_activity_energy)
                << ", peak memory " << rep.peak_mem_locations
                << " locations (" << engine.threads()
                << " engine threads)\n";
    }

    print_perf();
    bool audit_failed = false;
    for (const engine::TaskReport& tr : rep.tasks) {
      if (tr.audit.audited && !tr.audit.clean()) {
        audit_failed = true;
        print_audit_findings(tr.name, tr.audit);
      }
    }
    // A task the deadline curtailed prints LERA_TIMEOUT; only tasks
    // that are infeasible for real reasons print LERA_ERROR. Exit: a
    // genuine infeasibility wins (1), then audit findings (2), then a
    // deadline-curtailed-but-usable run (3).
    bool genuine_infeasible = false;
    for (const ir::TaskId id : rep.infeasible_tasks) {
      const engine::TaskReport& tr =
          *std::find_if(rep.tasks.begin(), rep.tasks.end(),
                        [&](const engine::TaskReport& t) {
                          return t.task == id;
                        });
      if (tr.timed_out) continue;
      genuine_infeasible = true;
      print_error_line(tr.name, tr.failure_reason);
    }
    for (const ir::TaskId id : rep.timed_out_tasks) {
      const engine::TaskReport& tr =
          *std::find_if(rep.tasks.begin(), rep.tasks.end(),
                        [&](const engine::TaskReport& t) {
                          return t.task == id;
                        });
      print_timeout_line(tr.name, tr.feasible
                                      ? "solve degraded under the deadline"
                                      : tr.failure_reason);
    }
    if (genuine_infeasible) return 1;
    if (audit_failed) return 2;
    return rep.tasks_timed_out > 0 ? 3 : 0;
  }

  if (explore) {
    if (!block) {
      std::cerr << "--explore needs a code kernel, not a lifetime file\n";
      return 1;
    }
    const engine::ExploreResult ex = engine.explore(*block);
    report::Table candidates(
        {"candidate", "length", "max density", "energy", "feasible"});
    for (std::size_t i = 0; i < ex.candidates.size(); ++i) {
      const engine::ScheduleCandidate& c = ex.candidates[i];
      candidates.add_row(
          {(static_cast<int>(i) == ex.best ? "* " : "  ") + c.label,
           report::Table::num(c.length), report::Table::num(c.max_density),
           c.feasible ? report::Table::num(c.energy) : "-",
           c.feasible ? "yes" : "no"});
    }
    if (csv) {
      candidates.print_csv(std::cout);
    } else {
      candidates.print(std::cout);
      std::cout << "\n(" << engine.threads()
                << " engine threads; * marks the cheapest feasible "
                   "candidate)\n";
    }
    print_perf();
    return ex.best >= 0 ? 0 : 1;
  }

  const alloc::AllocationResult r = engine.allocate_batch({p}).front();
  if (use_cache) {
    // The cold solve above always misses (the cache starts empty);
    // resubmitting the identical instance must hit and serve the same
    // placement. Both outcomes print, so a script can assert the
    // round-trip: grep for a "LERA_CACHE hit" with identical=1.
    std::cout << "LERA_CACHE miss\n";
    const bool reusable = r.feasible && !r.degraded && !r.timed_out;
    if (reusable) {
      const std::int64_t hits_before = engine.stats().cache_hits;
      const alloc::AllocationResult again =
          engine.allocate_batch({p}).front();
      const bool hit = engine.stats().cache_hits > hits_before;
      bool identical = again.assignment.size() == r.assignment.size();
      for (std::size_t s = 0; identical && s < r.assignment.size(); ++s) {
        identical = again.assignment.in_register(s) ==
                        r.assignment.in_register(s) &&
                    again.assignment.location(s) == r.assignment.location(s);
      }
      std::cout << "LERA_CACHE " << (hit ? "hit" : "miss")
                << " identical=" << (identical ? 1 : 0) << "\n";
    }
  }
  print_perf();
  if (!r.feasible) {
    if (r.memory_exceeded) {
      // No usable answer and the cause is the memory budget, not the
      // problem: scripts distinguish "budget too small" (4) from
      // "problem infeasible" (1).
      print_memory_line(source_name, r.message);
      std::cerr << "memory budget refused the solve: " << r.message
                << "\n";
      return 4;
    }
    if (r.timed_out) {
      // No usable answer, but the cause is the deadline, not the
      // problem: scripts distinguish "deadline too tight" (3) from
      // "problem infeasible" (1).
      print_timeout_line(source_name, r.message);
      std::cerr << "deadline curtailed the solve: " << r.message << "\n";
      return 3;
    }
    print_error_line(source_name, r.message);
    std::cerr << "allocation infeasible: " << r.message << "\n";
    std::cerr << "solver diagnostics: " << r.solve_diagnostics.summary()
              << "\n";
    for (const std::string& issue :
         r.solve_diagnostics.instance_errors) {
      std::cerr << "  instance error: " << issue << "\n";
    }
    return 1;
  }
  int exit_code = 0;
  if (r.timed_out) {
    exit_code = 3;
    print_timeout_line(source_name, "solve degraded under the deadline");
  }
  if (r.degraded) {
    std::cerr << "warning: " << r.message << "\n";
  }
  if (r.audit.audited && !r.audit.clean()) {
    print_audit_findings(source_name, r.audit);
    std::cerr << "audit: " << r.audit.summary() << "\n";
    return 2;
  }

  report::Table table({"segment", "interval", "placement"});
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    const auto& seg = p.segments[s];
    table.add_row(
        {p.lifetimes[static_cast<std::size_t>(seg.var)].name +
             (seg.index ? "#" + std::to_string(seg.index) : ""),
         "[" + std::to_string(seg.start) + "," + std::to_string(seg.end) +
             ")",
         r.assignment.in_register(s)
             ? "r" + std::to_string(r.assignment.location(s))
             : "memory"});
  }

  if (csv) {
    table.print_csv(std::cout);
    std::cout << "mem_accesses," << r.stats.mem_accesses() << "\n"
              << "reg_accesses," << r.stats.reg_accesses() << "\n"
              << "mem_locations," << r.stats.mem_locations << "\n"
              << "energy," << r.energy(p) << "\n"
              << "degraded," << (r.degraded ? 1 : 0) << "\n"
              << "timed_out," << (r.timed_out ? 1 : 0) << "\n"
              << "memory_exceeded," << (r.memory_exceeded ? 1 : 0) << "\n"
              << "solver,"
              << (r.degraded
                      ? std::string("two-phase-baseline")
                      : to_string(r.solve_diagnostics.solver_used))
              << "\n"
              << "solver_fallbacks,"
              << r.solve_diagnostics.fallbacks_taken << "\n";
    return exit_code;
  }

  report::draw_lifetimes(std::cout, p, &r.assignment);
  std::cout << "\n";
  table.print(std::cout);
  if (emit_asm && block) {
    const alloc::MemoryLayout layout =
        alloc::optimize_memory_layout(p, r.assignment);
    const codegen::Program program = codegen::emit(
        *block, *block_schedule, p, r.assignment, layout);
    std::cout << "\nlowered code (" << program.code_size()
              << " instructions, " << program.loads << " loads, "
              << program.stores << " stores):\n"
              << program.to_string();
  }
  std::cout << "\nsolver: " << r.solve_diagnostics.summary() << "\n";
  std::cout << "\nmem accesses " << r.stats.mem_accesses()
            << ", reg accesses " << r.stats.reg_accesses()
            << ", memory locations " << r.stats.mem_locations
            << "\nenergy " << report::Table::num(r.energy(p))
            << " add-units ("
            << (params.register_model == energy::RegisterModel::kStatic
                    ? "static"
                    : "activity")
            << " model)\n";
  return exit_code;
}
