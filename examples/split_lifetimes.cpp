// Split lifetimes and restricted memory access times (paper §5.2).
//
// Recreates the situation of the paper's Figure 1c: the memory module is
// clocked at half the datapath rate, so it can only be accessed at odd
// control steps. Lifetimes that begin or end between access times are
// *forced* into registers (flow lower bounds of 1); the rest may be
// split at access boundaries and spilled mid-life. The example prints
// the segment table, the allocation, and a Graphviz rendering of the
// network flow graph with the optimal flow highlighted.
//
// Build & run:  ./build/examples/split_lifetimes [out.dot]

#include <fstream>
#include <iostream>

#include "alloc/allocator.hpp"
#include "netflow/solution.hpp"
#include "report/dot.hpp"
#include "report/table.hpp"
#include "workloads/paper_examples.hpp"

int main(int argc, char** argv) {
  using namespace lera;

  // The Figure 1 lifetimes, with memory accessible at steps 1,3,5,7.
  std::vector<lifetime::Lifetime> lifetimes =
      workloads::figure1_lifetimes();
  lifetime::SplitOptions split;
  split.access.period = 2;
  split.access.phase = 1;

  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = alloc::make_problem(
      std::move(lifetimes), /*num_steps=*/7, /*num_registers=*/3, params,
      energy::ActivityMatrix(5, 0.5, 0.5), split);

  report::Table segs({"segment", "interval", "start cut", "end cut",
                      "forced to register"});
  auto kind_name = [](lifetime::CutKind k) {
    switch (k) {
      case lifetime::CutKind::kDef: return "def";
      case lifetime::CutKind::kRead: return "read";
      case lifetime::CutKind::kDeath: return "death";
      case lifetime::CutKind::kBoundary: return "access time";
    }
    return "?";
  };
  for (const auto& seg : p.segments) {
    segs.add_row(
        {p.lifetimes[static_cast<std::size_t>(seg.var)].name + "#" +
             std::to_string(seg.index),
         "[" + std::to_string(seg.start) + "," + std::to_string(seg.end) +
             ")",
         kind_name(seg.start_kind), kind_name(seg.end_kind),
         seg.forced_register ? "yes" : "no"});
  }
  segs.print(std::cout);

  const alloc::AllocationResult r = alloc::allocate(p);
  if (!r.feasible) {
    std::cerr << "allocation failed: " << r.message << "\n";
    return 1;
  }
  std::cout << "\nallocation with R = " << p.num_registers << ":\n";
  report::Table where({"segment", "placement"});
  for (std::size_t s = 0; s < p.segments.size(); ++s) {
    where.add_row(
        {p.lifetimes[static_cast<std::size_t>(p.segments[s].var)].name +
             "#" + std::to_string(p.segments[s].index),
         r.assignment.in_register(s)
             ? "r" + std::to_string(r.assignment.location(s))
             : "memory"});
  }
  where.print(std::cout);
  std::cout << "memory accesses " << r.stats.mem_accesses()
            << ", register accesses " << r.stats.reg_accesses()
            << ", energy " << r.activity_energy.total() << " add-units\n";

  // Render the flow graph (paper Figure 1c) with the solution on it.
  const alloc::FlowGraphSpec spec =
      alloc::build_flow_graph(p, alloc::GraphStyle::kDensityRegions);
  const netflow::FlowSolution sol = netflow::solve_st_flow(
      spec.graph, spec.s, spec.t, p.num_registers);
  const char* path = argc > 1 ? argv[1] : "figure1c_flow.dot";
  std::ofstream out(path);
  report::write_dot(out, spec, &sol);
  std::cout << "\nflow graph written to " << path
            << " (render with: dot -Tpng " << path << " -o flow.png)\n";
  return 0;
}
