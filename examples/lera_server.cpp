// lera_server: long-lived allocation service over the engine.
//
// Accepts length-framed .lt requests (see src/server/framing.hpp) and
// streams back LERA_* response lines. Three transports, one request
// path:
//
//   ./build/examples/lera_server --pipe           # stdin/stdout, 1 conn
//   ./build/examples/lera_server --unix /tmp/lera.sock
//   ./build/examples/lera_server --tcp 127.0.0.1:7411   # port 0 = any
//
// Options:
//   --threads N         engine worker threads (default 0 = all cores)
//   -r N                registers (default 4)
//   -m static|activity  energy model (default activity)
//   --deadline-ms N     default per-request deadline when a frame
//                       declares none (0 = none)
//   --max-queue N       global admission bound (default 64)
//   --per-tenant N      per-tenant admission bound (default 16)
//   --min-deadline-ms N shed requests declaring a tighter deadline
//   --max-frame-bytes N frame payload cap (default 1 MiB)
//   --queue-budget-ms N watchdog budget on rolling p95 queue wait
//   --drain-grace-s X   drain grace before in-flight work is cancelled
//   --max-bytes N       per-solve memory budget in bytes (0 = none);
//                       requests predicted to exceed it are shed with
//                       LERA_REJECT reason=memory_infeasible
//   --max-bytes-total N engine-wide memory cap in bytes (0 = none)
//   --no-assign         omit assign= from LERA_RESULT lines
//   --workers N         crash isolation: solve in N forked worker
//                       subprocesses; a worker death becomes a typed
//                       LERA_REJECT reason=worker_crashed, never a
//                       daemon crash (0 = in-process, the default)
//   --isolate           shorthand for --workers 2
//   --crash-dir PATH    write each crashing request's payload as a
//                       byte-identical .lt reproducer under PATH
//   --poison-threshold N  quarantine a payload fingerprint after N
//                       worker crashes (default 3)
//   --cache-entries N   certified allocation cache: keep up to N
//                       canonical-fingerprint entries and serve exact
//                       repeats before admission (0 = off, the
//                       default, with byte-identical output to the
//                       pre-cache server)
//   --cache-bytes N     byte budget for cached results (0 = entries
//                       cap only); charged against --max-bytes-total
//   --cache-audit-rate N  paranoia recheck every Nth cache hit
//                       (default 16; 0 = never re-audit)
//
// Environment: LERA_CRASH_FAILPOINT="seed=S one_in=N marker=TEXT"
// arms seeded crash injection inside workers (chaos drills / CI only).
//
// Signals and shutdown: SIGTERM/SIGINT begin a graceful drain — new
// work is rejected with LERA_REJECT reason=draining, in-flight solves
// get --drain-grace-s to finish (then are cancelled and accounted),
// every response is flushed, and the process exits 0. A client can
// trigger the same drain with a DRAIN frame.
//
// Exit codes (see docs/API.md): 0 clean end of service (EOF in pipe
// mode, completed drain otherwise), 1 bind/runtime error, 2 bad usage
// or malformed flags, 4 memory exhaustion in the daemon itself.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/listener.hpp"
#include "server/server.hpp"

namespace {

int usage(int code) {
  std::cout
      << "usage: lera_server (--pipe | --unix PATH | --tcp HOST:PORT)\n"
         "  [--threads N] [-r N] [-m static|activity] [--deadline-ms N]\n"
         "  [--max-queue N] [--per-tenant N] [--min-deadline-ms N]\n"
         "  [--max-frame-bytes N] [--queue-budget-ms N]\n"
         "  [--drain-grace-s X] [--max-bytes N] [--max-bytes-total N]\n"
         "  [--no-assign] [--workers N] [--isolate] [--crash-dir PATH]\n"
         "  [--poison-threshold N] [--cache-entries N] [--cache-bytes N]\n"
         "  [--cache-audit-rate N]\n"
         "exit codes: 0 clean end of service (EOF/drain complete),\n"
         "  1 bind or runtime error, 2 bad usage or malformed flags,\n"
         "  4 daemon memory exhaustion\n";
  return code;
}

/// Parses LERA_CRASH_FAILPOINT ("seed=S one_in=N marker=TEXT exit=C")
/// into crash-injection options for the worker pool. Unknown keys are
/// ignored; the marker value runs to the end of the string so payload
/// markers may contain spaces.
lera::netflow::CrashFailpoint::Options parse_crash_env(
    const std::string& text) {
  lera::netflow::CrashFailpoint::Options crash;
  std::size_t pos = 0;
  while (pos < text.size()) {
    while (pos < text.size() && text[pos] == ' ') ++pos;
    const std::size_t eq = text.find('=', pos);
    if (eq == std::string::npos) break;
    const std::string key = text.substr(pos, eq - pos);
    if (key == "marker") {
      crash.marker = text.substr(eq + 1);
      break;
    }
    std::size_t end = text.find(' ', eq + 1);
    if (end == std::string::npos) end = text.size();
    const std::string value = text.substr(eq + 1, end - eq - 1);
    try {
      if (key == "seed") {
        crash.seed = static_cast<std::uint64_t>(std::stoull(value));
      } else if (key == "one_in") {
        crash.crash_one_in = std::stoi(value);
      } else if (key == "exit") {
        crash.exit_code = std::stoi(value);
      }
    } catch (...) {
      // Malformed chaos knobs must never stop a real daemon.
    }
    pos = end;
  }
  return crash;
}

/// Waits for SIGTERM/SIGINT (blocked in every thread, collected here
/// via sigwait) and starts the graceful drain. Joinable: the
/// destructor flags `exiting_` and raises SIGTERM itself to unpark
/// sigwait, so the drain callbacks can never touch server/listener
/// after main has begun destroying them.
class SignalWatcher {
 public:
  SignalWatcher(sigset_t set, lera::server::Server& server,
                lera::server::Listener* listener)
      : thread_([this, set, &server, listener] {
          int sig = 0;
          if (sigwait(&set, &sig) != 0) return;
          if (exiting_.load(std::memory_order_acquire)) return;
          server.begin_drain();
          if (listener != nullptr) listener->shutdown();
        }) {}

  ~SignalWatcher() {
    exiting_.store(true, std::memory_order_release);
    // Consumed by the parked sigwait; if the watcher already took a
    // real signal, the extra SIGTERM stays blocked and pending, which
    // is harmless at exit.
    ::kill(::getpid(), SIGTERM);
    thread_.join();
  }

  SignalWatcher(const SignalWatcher&) = delete;
  SignalWatcher& operator=(const SignalWatcher&) = delete;

 private:
  std::atomic<bool> exiting_{false};
  std::thread thread_;
};

int run(int argc, char** argv) {
  using namespace lera;

  enum class Mode { kNone, kPipe, kUnix, kTcp };
  Mode mode = Mode::kNone;
  std::string unix_path;
  std::string tcp_host = "127.0.0.1";
  int tcp_port = 0;
  bool model_set = false;
  server::ServerOptions opts;
  opts.engine.threads = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    auto next_num = [&](const char* flag) -> double {
      const std::string v = next();
      try {
        return std::stod(v);
      } catch (...) {
        std::cerr << "error: " << flag << " requires a number, got '" << v
                  << "'\n";
        std::exit(2);
      }
    };
    if (arg == "--pipe") {
      mode = Mode::kPipe;
    } else if (arg == "--unix") {
      mode = Mode::kUnix;
      unix_path = next();
    } else if (arg == "--tcp") {
      mode = Mode::kTcp;
      const std::string hp = next();
      const std::size_t colon = hp.rfind(':');
      if (colon == std::string::npos) {
        std::cerr << "error: --tcp expects HOST:PORT, got '" << hp
                  << "'\n";
        return 2;
      }
      tcp_host = hp.substr(0, colon);
      try {
        tcp_port = std::stoi(hp.substr(colon + 1));
      } catch (...) {
        std::cerr << "error: bad port in '" << hp << "'\n";
        return 2;
      }
    } else if (arg == "--threads") {
      opts.engine.threads = static_cast<int>(next_num("--threads"));
    } else if (arg == "-r") {
      opts.engine.num_registers = static_cast<int>(next_num("-r"));
    } else if (arg == "-m") {
      const std::string m = next();
      opts.engine.params.register_model =
          m == "static" ? energy::RegisterModel::kStatic
                        : energy::RegisterModel::kActivity;
      model_set = true;
      if (m != "static" && m != "activity") {
        std::cerr << "error: -m expects static|activity, got '" << m
                  << "'\n";
        return 2;
      }
    } else if (arg == "--deadline-ms") {
      opts.engine.task_deadline_seconds =
          next_num("--deadline-ms") / 1000.0;
    } else if (arg == "--max-queue") {
      opts.admission.max_queue = static_cast<int>(next_num("--max-queue"));
    } else if (arg == "--per-tenant") {
      opts.admission.per_tenant_queue =
          static_cast<int>(next_num("--per-tenant"));
    } else if (arg == "--min-deadline-ms") {
      opts.admission.min_feasible_deadline_ms =
          next_num("--min-deadline-ms");
    } else if (arg == "--max-frame-bytes") {
      opts.framing.max_frame_bytes =
          static_cast<std::size_t>(next_num("--max-frame-bytes"));
    } else if (arg == "--queue-budget-ms") {
      opts.metrics.queue_budget_ms = next_num("--queue-budget-ms");
    } else if (arg == "--drain-grace-s") {
      opts.drain_grace_seconds = next_num("--drain-grace-s");
    } else if (arg == "--max-bytes") {
      opts.engine.max_bytes_per_solve =
          static_cast<std::int64_t>(next_num("--max-bytes"));
    } else if (arg == "--max-bytes-total") {
      opts.engine.max_bytes_total =
          static_cast<std::int64_t>(next_num("--max-bytes-total"));
    } else if (arg == "--no-assign") {
      opts.echo_assignment = false;
    } else if (arg == "--workers") {
      opts.isolation.workers = static_cast<int>(next_num("--workers"));
    } else if (arg == "--isolate") {
      if (opts.isolation.workers <= 0) opts.isolation.workers = 2;
    } else if (arg == "--crash-dir") {
      opts.isolation.crash_dir = next();
    } else if (arg == "--poison-threshold") {
      opts.isolation.poison_threshold =
          static_cast<int>(next_num("--poison-threshold"));
    } else if (arg == "--cache-entries") {
      opts.engine.cache_entries =
          static_cast<std::size_t>(next_num("--cache-entries"));
    } else if (arg == "--cache-bytes") {
      opts.engine.cache_bytes =
          static_cast<std::int64_t>(next_num("--cache-bytes"));
    } else if (arg == "--cache-audit-rate") {
      opts.engine.cache_audit_rate =
          static_cast<std::uint32_t>(next_num("--cache-audit-rate"));
    } else if (arg == "-h" || arg == "--help") {
      return usage(0);
    } else {
      std::cerr << "error: unknown flag '" << arg << "'\n";
      return usage(2);
    }
  }
  if (mode == Mode::kNone) {
    std::cerr << "error: pick a transport\n";
    return usage(2);
  }
  if (!model_set) {
    opts.engine.params.register_model = energy::RegisterModel::kActivity;
  }
  if (opts.isolation.workers > 0) {
    // Announce worker pids on stderr so ops and chaos drills can
    // target a live worker; arm injected crashes only when asked.
    opts.isolation.announce_workers = true;
    if (const char* env = std::getenv("LERA_CRASH_FAILPOINT")) {
      opts.isolation.worker.crash = parse_crash_env(env);
    }
  }

  // Route SIGTERM/SIGINT to the watcher thread (blocked everywhere
  // else, so solver threads never race a handler). Ignore SIGPIPE so
  // a client closing its socket mid-response surfaces as -1/EPIPE
  // from write() — handled as client_gone — instead of killing the
  // whole process.
  std::signal(SIGPIPE, SIG_IGN);
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGTERM);
  sigaddset(&sigs, SIGINT);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  server::Server server(opts);

  if (mode == Mode::kPipe) {
    SignalWatcher watcher(sigs, server, nullptr);
    server::FdStream stream(0, 1, /*owns_fds=*/false);
    server.serve(stream);
    return 0;
  }

  std::string error;
  std::unique_ptr<server::Listener> listener =
      mode == Mode::kUnix
          ? server::Listener::listen_unix(unix_path, &error)
          : server::Listener::listen_tcp(tcp_host, tcp_port, &error);
  if (listener == nullptr) {
    std::cerr << "error: cannot listen: " << error << "\n";
    return 1;
  }
  std::cerr << "lera_server listening on " << listener->endpoint()
            << "\n";
  // Destroyed (joined) before listener and server, in reverse
  // declaration order.
  SignalWatcher watcher(sigs, server, listener.get());

  // A DRAIN frame on any connection also ends service: mirror it to
  // the listener so accept() unblocks.
  std::thread drain_monitor([&server, &listener] {
    while (!server.draining()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    listener->shutdown();
  });

  std::vector<std::thread> connections;
  for (;;) {
    std::unique_ptr<server::FdStream> conn = listener->accept();
    if (conn == nullptr) break;
    connections.emplace_back(
        [&server, stream = std::move(conn)] { server.serve(*stream); });
  }
  server.begin_drain();  // Unblocks drain_monitor on listener failure.
  for (std::thread& t : connections) t.join();
  drain_monitor.join();
  std::cerr << "lera_server drained: " << server.metrics_json() << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::bad_alloc&) {
    // Exit code 4 = memory, aligned with allocate_tool (docs/API.md).
    std::cerr << "error: daemon out of memory\n";
    return 4;
  }
}
