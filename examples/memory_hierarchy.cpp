// On-chip scratchpad vs off-chip memory (paper §7 and refs [20, 21]).
//
// Off-chip accesses dissipate an order of magnitude more energy than
// on-chip ones, so once registers are allocated, *which* memory hosts
// each spilled value is the next biggest lever. This example sweeps the
// scratchpad capacity for the radar kernel and shows the optimal
// register/on-chip/off-chip split at every point — each stage solved by
// the same minimum-cost interval flow.
//
// Build & run:  ./build/examples/memory_hierarchy

#include <iostream>

#include "alloc/hierarchy.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace lera;

  const ir::BasicBlock bb = workloads::make_rsp(5);
  const sched::Schedule schedule = sched::list_schedule(bb, {2, 2});
  energy::EnergyParams params;
  params.register_model = energy::RegisterModel::kActivity;
  const alloc::AllocationProblem p = alloc::make_problem_from_block(
      bb, schedule, /*num_registers=*/6, params,
      workloads::random_inputs(bb, 48, 21));

  std::cout << "radar kernel: " << p.lifetimes.size() << " variables, "
            << "peak density " << p.max_density() << ", R = "
            << p.num_registers << "\n\n";

  report::Table table({"scratchpad words", "on-chip runs", "off-chip runs",
                       "on/off accesses", "storage energy",
                       "vs all-off-chip"});
  for (int capacity : {0, 1, 2, 4, 8, 16, 32}) {
    alloc::HierarchyParams h;
    h.onchip_capacity = capacity;
    const alloc::HierarchicalResult r = alloc::allocate_hierarchical(p, h);
    if (!r.feasible) {
      std::cerr << "capacity " << capacity << ": " << r.message << "\n";
      return 1;
    }
    table.add_row(
        {report::Table::num(capacity), report::Table::num(r.onchip_runs),
         report::Table::num(r.offchip_runs),
         report::Table::num(r.onchip_accesses) + "/" +
             report::Table::num(r.offchip_accesses),
         report::Table::num(r.total_static_energy),
         report::Table::num(r.all_offchip_static_energy /
                            r.total_static_energy) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "\nthe scratchpad flow hosts the hottest overlapping runs "
               "first; past the memory's peak residency, extra capacity "
               "buys nothing.\n";
  return 0;
}
