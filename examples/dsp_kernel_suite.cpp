// DSP kernel suite: simultaneous vs two-phase allocation.
//
// Runs the whole library pipeline on the classic HLS kernels the
// paper's introduction motivates (filtering, transforms, detection) and
// compares the paper's simultaneous flow against the historical
// two-phase approach of [8] — allocate registers first, partition into
// memory second.
//
// Build & run:  ./build/examples/dsp_kernel_suite

#include <iostream>

#include "alloc/allocator.hpp"
#include "alloc/two_phase.hpp"
#include "report/table.hpp"
#include "sched/schedule.hpp"
#include "workloads/kernels.hpp"

int main() {
  using namespace lera;

  const std::vector<ir::BasicBlock> kernels = {
      workloads::make_fir(8),
      workloads::make_iir_biquad(),
      workloads::make_elliptic_wave_filter(),
      workloads::make_fft_butterfly(),
      workloads::make_fft(8),
      workloads::make_dct4(),
      workloads::make_matmul(3),
      workloads::make_conv3x3(),
      workloads::make_lattice(4),
      workloads::make_rsp(4),
  };

  report::Table table({"kernel", "vars", "steps", "peak density", "R",
                       "two-phase E", "simultaneous E", "improvement"});

  for (const ir::BasicBlock& bb : kernels) {
    const sched::Schedule schedule = sched::list_schedule(bb, {2, 1});
    energy::EnergyParams params;
    params.register_model = energy::RegisterModel::kActivity;
    const alloc::AllocationProblem probe = alloc::make_problem_from_block(
        bb, schedule, 1, params, workloads::random_inputs(bb, 48, 3));

    alloc::AllocationProblem p = probe;
    p.num_registers = std::max(1, probe.max_density() / 3);

    const alloc::AllocationResult ours = alloc::allocate(p);
    const alloc::AllocationResult baseline = alloc::two_phase_allocate(p);
    if (!ours.feasible || !baseline.feasible) {
      table.add_row({bb.name(), "-", "-", "-", "-", "-", "-",
                     "infeasible"});
      continue;
    }
    table.add_row(
        {bb.name(), report::Table::num(static_cast<int>(p.lifetimes.size())),
         report::Table::num(schedule.length(bb)),
         report::Table::num(p.max_density()),
         report::Table::num(p.num_registers),
         report::Table::num(baseline.activity_energy.total()),
         report::Table::num(ours.activity_energy.total()),
         report::Table::num(baseline.activity_energy.total() /
                            ours.activity_energy.total()) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "\nThe simultaneous flow is provably optimal for its model, "
               "so the improvement column is always >= 1.0x (the paper "
               "reports 1.4x-2.5x on its examples).\n";
  return 0;
}
