// Differential fuzz driver: random allocation problems through the flow
// allocator, the two-phase baseline and (on small instances) the
// exhaustive optimum, every result independently audited, every
// disagreement captured as a minimal reproducer.
//
//   ./build/examples/fuzz_tool [options]
//     --seeds A:B       seed range [A, B) (default 1:201)
//     --artifacts DIR   write repro_seed<N>.lt / .min.lt files here
//     --no-shrink       keep failing instances full-size
//     --max-vars N      instance size cap (default 9)
//     --max-steps N     instance length cap (default 12)
//
// Exit status: 0 when every seed checks out, 1 when any differential
// or audit finding survived. Failures print one "LERA_FUZZ_FAIL"
// line per seed (grep target for CI) plus the per-check diagnostics;
// reproducers replay with:
//
//   ./build/examples/allocate_tool -l DIR/repro_seed<N>.min.lt --audit full

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "audit/fuzz.hpp"

int main(int argc, char** argv) {
  using namespace lera;

  audit::DiffFuzzOptions opts;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? argv[++i] : std::string{};
    };
    if (arg == "--seeds") {
      const std::string v = next();
      const std::size_t colon = v.find(':');
      try {
        if (colon == std::string::npos) throw std::invalid_argument(v);
        opts.seed_begin = std::stoull(v.substr(0, colon));
        opts.seed_end = std::stoull(v.substr(colon + 1));
      } catch (...) {
        std::cerr << "error: --seeds expects A:B, got '" << v << "'\n";
        return 64;
      }
      if (opts.seed_end <= opts.seed_begin) {
        std::cerr << "error: empty seed range " << v << "\n";
        return 64;
      }
    } else if (arg == "--artifacts") {
      opts.artifact_dir = next();
    } else if (arg == "--no-shrink") {
      opts.shrink = false;
    } else if (arg == "--max-vars") {
      opts.max_vars = std::atoi(next().c_str());
    } else if (arg == "--max-steps") {
      opts.max_steps = std::atoi(next().c_str());
    } else if (arg == "-h" || arg == "--help") {
      std::cout << "usage: fuzz_tool [--seeds A:B] [--artifacts DIR] "
                   "[--no-shrink] [--max-vars N] [--max-steps N]\n";
      return 0;
    } else {
      std::cerr << "error: unknown argument '" << arg << "'\n";
      return 64;
    }
  }

  std::cout << "fuzzing seeds [" << opts.seed_begin << ", "
            << opts.seed_end << ")";
  if (!opts.artifact_dir.empty()) {
    std::cout << ", artifacts -> " << opts.artifact_dir;
  }
  std::cout << "\n";

  const audit::DiffFuzzReport report = audit::run_differential_fuzz(opts);

  for (const audit::DiffFuzzFailure& f : report.failures) {
    std::cout << "LERA_FUZZ_FAIL seed=" << f.seed << " checks="
              << f.diffs.size();
    if (!f.artifact_path.empty()) {
      std::cout << " artifact=" << f.artifact_path;
    }
    if (!f.shrunk_path.empty()) {
      std::cout << " shrunk=" << f.shrunk_path << " (size "
                << f.original_size << " -> " << f.shrunk_size << ")";
    }
    std::cout << "\n";
    for (const std::string& diff : f.diffs) {
      std::cout << "  " << diff << "\n";
    }
  }

  std::cout << report.problems << " problems, " << report.failures.size()
            << " failure(s)\n";
  return report.clean() ? 0 : 1;
}
